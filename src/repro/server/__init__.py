"""Simulated server hardware substrate.

The paper evaluates Twig on a dual-socket Intel Xeon E5-2695v4 node
(36 cores, per-core DVFS 1.2-2.0 GHz in 0.1 GHz steps, RAPL power
readings). This subpackage models the pieces Twig interacts with:

- :mod:`repro.server.spec` — the static machine description (sockets,
  cores, DVFS ladder, LLC size, memory bandwidth, power coefficients).
- :mod:`repro.server.machine` — mutable core state: per-core frequency,
  hotplug, service affinity, timeshared cores, and migration accounting.
- :mod:`repro.server.power` — the physical power model (idle + CV^2 f
  dynamic + uncore/bandwidth term) and a noisy socket-level RAPL sensor.
"""

from repro.server.machine import CoreAssignment, CoreState, Machine
from repro.server.power import PowerBreakdown, PowerModel, RaplSensor
from repro.server.spec import DvfsLadder, ServerSpec, SocketSpec

__all__ = [
    "CoreAssignment",
    "CoreState",
    "DvfsLadder",
    "Machine",
    "PowerBreakdown",
    "PowerModel",
    "RaplSensor",
    "ServerSpec",
    "SocketSpec",
]
