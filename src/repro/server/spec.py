"""Static server description.

Defaults mirror the paper's evaluation platform (Section V): a node with
two Intel Xeon E5-2695v4 sockets, 18 cores per socket (36 total,
hyper-threading disabled), per-core DVFS from 1.20 GHz to 2.00 GHz in
0.1 GHz steps, 45 MB LLC per socket and DDR4-2400 memory.

Note: the paper is internally inconsistent about the DVFS ladder — Section V
states 1.20-2.00 GHz in 0.1 steps (9 states) while Section V-B1 counts "10
DVFS states". We follow the explicit ladder (9 states); the ladder length is
configurable for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DvfsLadder:
    """An ordered list of available core frequencies, in GHz."""

    frequencies_ghz: Tuple[float, ...] = tuple(round(1.2 + 0.1 * i, 1) for i in range(9))

    def __post_init__(self) -> None:
        freqs = self.frequencies_ghz
        if len(freqs) < 2:
            raise ConfigurationError(f"DVFS ladder needs >= 2 states, got {freqs}")
        if list(freqs) != sorted(freqs) or len(set(freqs)) != len(freqs):
            raise ConfigurationError(f"DVFS ladder must be strictly increasing: {freqs}")
        if freqs[0] <= 0:
            raise ConfigurationError(f"frequencies must be positive: {freqs}")

    def __len__(self) -> int:
        return len(self.frequencies_ghz)

    def __getitem__(self, index: int) -> float:
        return self.frequencies_ghz[index]

    @property
    def min_ghz(self) -> float:
        return self.frequencies_ghz[0]

    @property
    def max_ghz(self) -> float:
        return self.frequencies_ghz[-1]

    def index_of(self, frequency_ghz: float) -> int:
        """Index of an exact frequency; raises if not on the ladder."""
        try:
            return self.frequencies_ghz.index(round(frequency_ghz, 3))
        except ValueError:
            raise ConfigurationError(
                f"{frequency_ghz} GHz not on ladder {self.frequencies_ghz}"
            ) from None


@dataclass(frozen=True)
class SocketSpec:
    """One CPU socket."""

    cores: int = 18
    llc_mb: float = 45.0
    membw_gbps: float = 60.0  # achievable DDR4-2400 stream bandwidth
    llc_ways: int = 20        # CAT way-partitioning granularity

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"socket needs >= 1 core, got {self.cores}")
        if self.llc_mb <= 0 or self.membw_gbps <= 0:
            raise ConfigurationError("llc_mb and membw_gbps must be positive")
        if self.llc_ways <= 0:
            raise ConfigurationError(f"llc_ways must be positive, got {self.llc_ways}")

    @property
    def mb_per_way(self) -> float:
        return self.llc_mb / self.llc_ways


@dataclass(frozen=True)
class ServerSpec:
    """Whole-node description plus physical power coefficients.

    Power coefficients approximate an E5-2695v4-class part: roughly 30 W
    idle per socket, ~120 W TDP, dynamic power following C.V(f)^2.f with a
    linear voltage/frequency relationship.
    """

    sockets: int = 2
    socket: SocketSpec = field(default_factory=SocketSpec)
    dvfs: DvfsLadder = field(default_factory=DvfsLadder)
    # power model coefficients
    idle_power_w: float = 18.0          # per socket, everything hotplugged off
    core_static_w: float = 0.50         # per enabled core, frequency independent
    dynamic_coeff: float = 2.20         # C in P_dyn = C * V^2 * f * utilisation (per core)
    voltage_base_v: float = 0.60        # V(f) = voltage_base + voltage_slope * f_GHz
    voltage_slope: float = 0.22
    uncore_bw_w: float = 18.0           # extra uncore power at 100% memory-bandwidth use
    tdp_w: float = 120.0                # per socket

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigurationError(f"need >= 1 socket, got {self.sockets}")
        for name in ("idle_power_w", "core_static_w", "dynamic_coeff",
                     "voltage_base_v", "voltage_slope", "uncore_bw_w", "tdp_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.socket.cores

    @property
    def cores_per_socket(self) -> int:
        return self.socket.cores

    def voltage(self, frequency_ghz: float) -> float:
        """Linear V(f) model."""
        return self.voltage_base_v + self.voltage_slope * frequency_ghz

    def socket_core_ids(self, socket_index: int) -> List[int]:
        """Global core ids belonging to a socket (contiguous blocks)."""
        if not 0 <= socket_index < self.sockets:
            raise ConfigurationError(
                f"socket index {socket_index} out of range [0, {self.sockets})"
            )
        start = socket_index * self.socket.cores
        return list(range(start, start + self.socket.cores))
