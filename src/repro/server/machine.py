"""Mutable machine state: per-core frequency, hotplug, and service affinity.

This is the substrate equivalent of what Twig's mapper manipulates through
``sched_setaffinity`` and the ``acpi-cpufreq`` userspace governor: each core
has a DVFS index, may be offline (CPU hot-plugging), and carries the set of
services pinned to it. A core pinned to more than one service is
*timeshared* — each pinned service receives an equal fraction of its
capacity during the interval (the arbitration policy of Section IV sets a
single frequency for such cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Set

import numpy as np

from repro.errors import AllocationError, CheckpointError
from repro.server.spec import ServerSpec


@dataclass
class CoreState:
    """State of a single physical core."""

    core_id: int
    socket: int
    freq_index: int = 0
    online: bool = True
    services: Set[str] = field(default_factory=set)

    @property
    def timeshared(self) -> bool:
        return len(self.services) > 1


@dataclass(frozen=True)
class CoreAssignment:
    """A service's placement: pinned cores, their DVFS index, and
    (optionally) an exclusive LLC way quota (Intel CAT). ``llc_ways = 0``
    means unpartitioned — the service competes for the whole cache."""

    cores: tuple
    freq_index: int
    llc_ways: int = 0


class Machine:
    """The running node: tracks core state and per-service migrations."""

    def __init__(self, spec: ServerSpec):
        self.spec = spec
        self.cores: List[CoreState] = [
            CoreState(core_id=i, socket=i // spec.cores_per_socket)
            for i in range(spec.total_cores)
        ]
        self.migration_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def cores_of(self, service: str) -> List[CoreState]:
        return [core for core in self.cores if service in core.services]

    def frequency_of(self, service: str) -> float:
        """The (maximum) frequency across a service's cores, in GHz."""
        cores = self.cores_of(service)
        if not cores:
            raise AllocationError(f"service {service!r} has no cores assigned")
        return max(self.spec.dvfs[core.freq_index] for core in cores)

    def effective_capacity(self, service: str) -> float:
        """Core-equivalents available to a service (timeshared cores count
        as their fair fraction)."""
        return sum(
            (1.0 if core.online else 0.0) / max(len(core.services), 1)
            for core in self.cores_of(service)
        )

    def socket_cores(self, socket_index: int) -> List[CoreState]:
        ids = self.spec.socket_core_ids(socket_index)
        return [self.cores[i] for i in ids]

    def migrations(self, service: str) -> int:
        return self.migration_counts.get(service, 0)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def apply(self, assignments: Mapping[str, CoreAssignment]) -> None:
        """Atomically install a set of service→cores assignments.

        Cores not owned by any service drop to the lowest DVFS state (the
        mapper's power-conservation rule). Migration counts increase by the
        number of cores that enter or leave each service's set.
        """
        self._validate(assignments)
        previous: Dict[str, Set[int]] = {
            name: {core.core_id for core in self.cores_of(name)} for name in assignments
        }
        for core in self.cores:
            core.services = set()
            core.freq_index = 0
        for name, assignment in assignments.items():
            for core_id in assignment.cores:
                core = self.cores[core_id]
                core.services.add(name)
                # Arbitration (Section IV): a timeshared core runs at the
                # highest DVFS state requested for it.
                core.freq_index = max(core.freq_index, assignment.freq_index)
        for name, assignment in assignments.items():
            new_set = set(assignment.cores)
            old_set = previous.get(name, set())
            moved = len(new_set.symmetric_difference(old_set))
            if moved:
                self.migration_counts[name] = self.migration_counts.get(name, 0) + moved

    def _validate(self, assignments: Mapping[str, CoreAssignment]) -> None:
        for name, assignment in assignments.items():
            if not assignment.cores:
                raise AllocationError(f"service {name!r} assigned zero cores")
            if not 0 <= assignment.freq_index < len(self.spec.dvfs):
                raise AllocationError(
                    f"service {name!r} freq index {assignment.freq_index} out of "
                    f"range [0, {len(self.spec.dvfs)})"
                )
            for core_id in assignment.cores:
                if not 0 <= core_id < self.spec.total_cores:
                    raise AllocationError(
                        f"service {name!r} references core {core_id}, machine has "
                        f"{self.spec.total_cores}"
                    )
            if len(set(assignment.cores)) != len(assignment.cores):
                raise AllocationError(f"service {name!r} repeats cores: {assignment.cores}")

    def set_hotplug(self, core_ids: Iterable[int], online: bool) -> None:
        for core_id in core_ids:
            self.cores[core_id].online = online

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Mutable core state and migration counters (spec is config)."""
        return {
            "freq_index": np.array([core.freq_index for core in self.cores], dtype=np.int64),
            "online": np.array([core.online for core in self.cores], dtype=bool),
            "services": [sorted(core.services) for core in self.cores],
            "migration_counts": dict(self.migration_counts),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot from :meth:`state_dict` (stage-then-commit)."""
        try:
            freq_index = np.asarray(state["freq_index"], dtype=np.int64)
            online = np.asarray(state["online"], dtype=bool)
            services = [set(map(str, names)) for names in list(state["services"])]
            migrations = {str(k): int(v) for k, v in dict(state["migration_counts"]).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed machine state: {exc}") from exc
        count = len(self.cores)
        if not (len(freq_index) == len(online) == len(services) == count):
            raise CheckpointError(
                f"machine checkpoint describes {len(freq_index)} cores, machine has {count}"
            )
        if freq_index.size and not (
            0 <= freq_index.min() and freq_index.max() < len(self.spec.dvfs)
        ):
            raise CheckpointError("machine checkpoint has out-of-range DVFS indices")
        for core, freq, is_online, pinned in zip(self.cores, freq_index, online, services):
            core.freq_index = int(freq)
            core.online = bool(is_online)
            core.services = pinned
        self.migration_counts = migrations
