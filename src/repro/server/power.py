"""Physical power model and RAPL-like socket sensor.

Per-socket power is composed of an idle floor, a static per-online-core
term, a dynamic ``C * V(f)^2 * f * utilisation`` term per core, and an
uncore term proportional to memory-bandwidth utilisation. This is the
*ground truth* the simulation bills energy against; it is distinct from
Twig's *first-order per-service estimate* (Equation 2 of the paper,
implemented in :mod:`repro.core.power_model`), which is used only inside
the reward function.

The RAPL sensor adds Gaussian measurement noise and integrates energy, the
way the paper polls the RAPL MSR at the control interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.server.spec import ServerSpec


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-socket power decomposition, in watts."""

    idle_w: float
    static_w: float
    dynamic_w: float
    uncore_w: float

    @property
    def total_w(self) -> float:
        return self.idle_w + self.static_w + self.dynamic_w + self.uncore_w


class PowerModel:
    """Computes ground-truth socket power from core activity."""

    def __init__(self, spec: ServerSpec):
        self.spec = spec

    def core_dynamic_w(self, frequency_ghz: float, utilization: float) -> float:
        """Dynamic power of one core at a frequency and utilisation."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization must be in [0, 1], got {utilization}")
        voltage = self.spec.voltage(frequency_ghz)
        return self.spec.dynamic_coeff * voltage * voltage * frequency_ghz * utilization

    def socket_power(
        self,
        core_activity: Sequence[Tuple[float, float]],
        membw_utilization: float = 0.0,
        online_cores: Optional[int] = None,
    ) -> PowerBreakdown:
        """Power of one socket.

        Parameters
        ----------
        core_activity:
            ``(frequency_ghz, utilization)`` per *active* core.
        membw_utilization:
            Fraction of the socket's memory bandwidth in use.
        online_cores:
            Number of hotplugged-on cores (defaults to all cores of the
            socket); offline cores contribute no static power.
        """
        if online_cores is None:
            online_cores = self.spec.cores_per_socket
        membw_utilization = float(np.clip(membw_utilization, 0.0, 1.0))
        dynamic = sum(self.core_dynamic_w(freq, util) for freq, util in core_activity)
        # Idle cores still clock-gate but leak; their frequency matters less,
        # so static power is per-online-core and frequency independent.
        static = self.spec.core_static_w * online_cores
        uncore = self.spec.uncore_bw_w * membw_utilization
        return PowerBreakdown(
            idle_w=self.spec.idle_power_w,
            static_w=static,
            dynamic_w=dynamic,
            uncore_w=uncore,
        )

    def max_power_w(self) -> float:
        """Socket power with all cores fully busy at max DVFS, no memory.

        This mirrors the paper's "stress microbenchmark that has no memory
        accesses" used to normalise the power reward (Section III-B2).
        """
        activity = [(self.spec.dvfs.max_ghz, 1.0)] * self.spec.cores_per_socket
        return self.socket_power(activity, membw_utilization=0.0).total_w

    def idle_power_w(self) -> float:
        """Socket power with every core online but idle at min DVFS."""
        activity = [(self.spec.dvfs.min_ghz, 0.0)] * self.spec.cores_per_socket
        return self.socket_power(activity, membw_utilization=0.0).total_w


class RaplSensor:
    """Noisy socket-level power readout with energy integration.

    Real RAPL counters expose energy at socket granularity only (the paper
    stresses per-core readings are unavailable); this sensor reproduces
    that: one reading per socket per poll, with multiplicative Gaussian
    noise, accumulated into joules.
    """

    def __init__(self, rng: np.random.Generator, noise_std: float = 0.01):
        if noise_std < 0:
            raise ConfigurationError(f"noise_std must be >= 0, got {noise_std}")
        self._rng = rng
        self.noise_std = noise_std
        self.energy_j = 0.0
        self.last_reading_w: Optional[Mapping[int, float]] = None

    def poll(self, true_power_w: Mapping[int, float], interval_s: float) -> Mapping[int, float]:
        """Record one interval; returns the noisy per-socket power readings."""
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        readings = {}
        for socket, power in true_power_w.items():
            noise = 1.0 + self._rng.normal(0.0, self.noise_std)
            readings[socket] = max(power * noise, 0.0)
        self.energy_j += sum(readings.values()) * interval_s
        self.last_reading_w = readings
        return readings

    def state_dict(self) -> Dict[str, Any]:
        """Energy accumulator and last reading (RNG is owned by the env)."""
        return {
            "energy_j": self.energy_j,
            "last_reading_w": (
                None
                if self.last_reading_w is None
                # Socket indices become JSON object keys, which must be str.
                else {str(socket): float(w) for socket, w in self.last_reading_w.items()}
            ),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot from :meth:`state_dict` (stage-then-commit)."""
        try:
            energy = float(state["energy_j"])
            raw = state["last_reading_w"]
            last = (
                None if raw is None else {int(socket): float(w) for socket, w in dict(raw).items()}
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed RAPL state: {exc}") from exc
        if not (np.isfinite(energy) and energy >= 0):
            raise CheckpointError(f"energy_j must be finite and >= 0, got {energy}")
        self.energy_j = energy
        self.last_reading_w = last
