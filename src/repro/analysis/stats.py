"""Distribution statistics for experiment analysis.

These are the numerical backbones of the paper's Figure 1 plots: the
probability-density view of prediction errors (left column) and the
per-latency-bucket violin statistics (right column), plus bootstrap
confidence intervals for comparing run summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError


@dataclass(frozen=True)
class Density:
    """A normalised histogram density estimate."""

    centers: np.ndarray
    density: np.ndarray
    bin_width: float

    def at(self, value: float) -> float:
        """Density at a value (0 outside the support)."""
        index = int((value - (self.centers[0] - self.bin_width / 2)) // self.bin_width)
        if 0 <= index < len(self.density):
            return float(self.density[index])
        return 0.0

    @property
    def mode(self) -> float:
        return float(self.centers[int(np.argmax(self.density))])


def histogram_density(
    samples: Sequence[float],
    bins: int = 50,
    bounds: Optional[Tuple[float, float]] = None,
) -> Density:
    """Histogram-based probability density (integrates to 1)."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size < 2:
        raise ConfigurationError("need at least two samples for a density")
    if bins < 2:
        raise ConfigurationError(f"bins must be >= 2, got {bins}")
    if bounds is None:
        low, high = float(data.min()), float(data.max())
        if low == high:
            low, high = low - 0.5, high + 0.5
    else:
        low, high = bounds
        if not low < high:
            raise ConfigurationError(f"invalid bounds {bounds}")
    counts, edges = np.histogram(data, bins=bins, range=(low, high), density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return Density(centers=centers, density=counts, bin_width=float(edges[1] - edges[0]))


@dataclass(frozen=True)
class ViolinBucket:
    """Violin statistics of one x-axis bucket (Figure 1b/1d)."""

    low: float
    high: float
    count: int
    median: float
    q25: float
    q75: float
    whisker_low: float
    whisker_high: float


def violin_stats(
    x: Sequence[float],
    y: Sequence[float],
    buckets: int = 5,
    min_count: int = 3,
) -> List[ViolinBucket]:
    """Per-x-quantile-bucket distribution statistics of ``y``.

    Buckets are x-quantile ranges (equal-population), matching how the
    paper groups prediction errors by measured tail-latency range.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ShapeError(f"x shape {x.shape} != y shape {y.shape}")
    if buckets < 1:
        raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
    edges = np.quantile(x, np.linspace(0.0, 1.0, buckets + 1))
    out: List[ViolinBucket] = []
    for low, high in zip(edges, edges[1:]):
        mask = (x >= low) & (x <= high)
        values = y[mask]
        if values.size < min_count:
            continue
        q25, median, q75 = np.percentile(values, [25, 50, 75])
        out.append(
            ViolinBucket(
                low=float(low),
                high=float(high),
                count=int(values.size),
                median=float(median),
                q25=float(q25),
                q75=float(q75),
                whisker_low=float(np.percentile(values, 2.5)),
                whisker_high=float(np.percentile(values, 97.5)),
            )
        )
    return out


def summary_quantiles(
    samples: Sequence[float],
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> dict:
    """Named quantiles plus mean/std of a sample set."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("summary_quantiles needs at least one sample")
    out = {"mean": float(data.mean()), "std": float(data.std())}
    for q in quantiles:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        out[f"p{round(q * 100):d}"] = float(np.quantile(data, q))
    return out


def bootstrap_ci(
    samples: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size < 2:
        raise ConfigurationError("need at least two samples for a bootstrap CI")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    rng = rng or np.random.default_rng(0)
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        stats[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha))
