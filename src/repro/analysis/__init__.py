"""Analysis helpers: distribution statistics and terminal rendering.

- :mod:`repro.analysis.stats` — histogram/KDE-style densities, violin-plot
  statistics (the per-bucket medians/IQRs of Figure 1), and bootstrap
  confidence intervals for run summaries.
- :mod:`repro.analysis.textplot` — dependency-free terminal charts
  (sparklines, horizontal bars, series tables) used by the CLI and the
  experiment reports.
- :mod:`repro.analysis.trace_report` — learning-curve + violation-timeline
  text reports rendered from structured JSONL traces (``repro trace
  report``).
"""

from repro.analysis.stats import (
    bootstrap_ci,
    histogram_density,
    summary_quantiles,
    violin_stats,
)
from repro.analysis.textplot import bar_chart, series_table, sparkline
from repro.analysis.trace_report import (
    ViolationEpisode,
    learning_curve,
    longest_episode,
    render_report,
    violation_episodes,
)

__all__ = [
    "ViolationEpisode",
    "bar_chart",
    "bootstrap_ci",
    "histogram_density",
    "learning_curve",
    "longest_episode",
    "render_report",
    "series_table",
    "sparkline",
    "summary_quantiles",
    "violation_episodes",
    "violin_stats",
]
