"""Analysis helpers: distribution statistics and terminal rendering.

- :mod:`repro.analysis.stats` — histogram/KDE-style densities, violin-plot
  statistics (the per-bucket medians/IQRs of Figure 1), and bootstrap
  confidence intervals for run summaries.
- :mod:`repro.analysis.textplot` — dependency-free terminal charts
  (sparklines, horizontal bars, series tables) used by the CLI and the
  experiment reports.
"""

from repro.analysis.stats import (
    bootstrap_ci,
    histogram_density,
    summary_quantiles,
    violin_stats,
)
from repro.analysis.textplot import bar_chart, series_table, sparkline

__all__ = [
    "bar_chart",
    "bootstrap_ci",
    "histogram_density",
    "series_table",
    "sparkline",
    "summary_quantiles",
    "violin_stats",
]
