"""Render a text report from a structured JSONL trace.

Turns any trace produced by :mod:`repro.obs` into the two views that
matter when debugging a run after the fact: a bucketed learning curve
(mean reward and QoS guarantee per bucket, as sparklines plus a table)
and a violation timeline showing where each QoS-violation episode
started, how long it lasted, and how bad it got. ``repro trace report``
is a thin wrapper over :func:`render_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.textplot import series_table, sparkline
from repro.errors import ConfigurationError
from repro.obs.sink import read_trace


@dataclass
class ViolationEpisode:
    """One maximal run of consecutive QoS-violation intervals."""

    service: str
    start: int                     # first violating interval (t)
    end: int                       # last violating interval (t)
    peak_tardiness: float

    @property
    def length(self) -> int:
        return self.end - self.start + 1


def violation_episodes(events: Iterable[Dict[str, Any]]) -> List[ViolationEpisode]:
    """Group ``qos_violation`` events into per-service episodes."""
    episodes: List[ViolationEpisode] = []
    open_episodes: Dict[str, ViolationEpisode] = {}
    for event in events:
        if event.get("ev") != "qos_violation":
            continue
        name = event["service"]
        current = open_episodes.get(name)
        if event["consecutive"] == 1 or current is None:
            current = ViolationEpisode(
                service=name,
                start=event["t"],
                end=event["t"],
                peak_tardiness=event["tardiness"],
            )
            open_episodes[name] = current
            episodes.append(current)
        else:
            current.end = event["t"]
            current.peak_tardiness = max(current.peak_tardiness, event["tardiness"])
    return episodes


def learning_curve(
    events: Sequence[Dict[str, Any]], bucket: int = 0
) -> Dict[str, List[float]]:
    """Bucketed mean reward and QoS-guarantee series from a trace.

    ``bucket=0`` picks ~20 buckets automatically. Returns columns keyed
    ``reward`` and ``qos_pct`` plus the bucket end-steps under ``step``.
    """
    rewards: List[tuple] = []
    intervals: List[tuple] = []
    for event in events:
        if event.get("ev") == "reward":
            rewards.append((event["t"], event["reward"]))
        elif event.get("ev") == "interval":
            met = [1.0 if s["qos_met"] else 0.0 for s in event["services"].values()]
            intervals.append((event["t"], sum(met) / len(met)))
    if not intervals:
        raise ConfigurationError("trace contains no interval events")
    last_t = intervals[-1][0]
    if bucket <= 0:
        bucket = max(1, last_t // 20)
    steps: List[float] = []
    reward_series: List[float] = []
    qos_series: List[float] = []
    for start in range(0, last_t + 1, bucket):
        end = start + bucket
        bucket_rewards = [r for t, r in rewards if start < t <= end]
        bucket_qos = [q for t, q in intervals if start < t <= end]
        if not bucket_qos:
            continue
        steps.append(float(end))
        reward_series.append(
            sum(bucket_rewards) / len(bucket_rewards) if bucket_rewards else 0.0
        )
        qos_series.append(100.0 * sum(bucket_qos) / len(bucket_qos))
    return {"step": steps, "reward": reward_series, "qos_pct": qos_series}


def cluster_summary(
    events: Sequence[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Fleet-level aggregates from ``cluster_interval`` events.

    Returns ``None`` for traces without cluster events (scalar and plain
    vector runs). Otherwise: node count, interval count, the per-interval
    cluster QoS-guarantee and total-power series, final cumulative
    energy, and per-service totals (mean offered/served rps, QoS% over
    node-intervals, worst p99 seen).
    """
    ticks = [e for e in events if e.get("ev") == "cluster_interval"]
    if not ticks:
        return None
    nodes = ticks[-1]["nodes"]
    per_service: Dict[str, Dict[str, float]] = {}
    for name in ticks[0]["services"]:
        entries = [t["services"][name] for t in ticks]
        per_service[name] = {
            "offered_rps": sum(e["offered_rps"] for e in entries) / len(entries),
            "served_rps": sum(e["served_rps"] for e in entries) / len(entries),
            "qos_pct": 100.0
            * sum(e["qos_nodes"] for e in entries)
            / (nodes * len(entries)),
            "worst_p99_ms": max(e["worst_p99_ms"] for e in entries),
        }
    return {
        "nodes": nodes,
        "intervals": len(ticks),
        "qos_pct": [100.0 * t["qos_guarantee"] for t in ticks],
        "power_w": [t["power_w"] for t in ticks],
        "energy_j": ticks[-1]["energy_j"],
        "services": per_service,
    }


def hier_summary(events: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Hierarchical-control aggregates from ``budget_assign`` events.

    Returns ``None`` for traces without an allocator. Otherwise: the
    per-assignment budget-level and mean-budget series, the allocator's
    reward series (first assignment excluded — it carries no reward), and
    the count of ``node_provisioned`` events.
    """
    assigns = [e for e in events if e.get("ev") == "budget_assign"]
    if not assigns:
        return None
    return {
        "assignments": len(assigns),
        "period": assigns[-1]["period"],
        "level": [a["level"] for a in assigns],
        "mean_budget_w": [a["mean_budget_w"] for a in assigns],
        "reward": [a["reward"] for a in assigns[1:]],
        "provisioned": sum(1 for e in events if e.get("ev") == "node_provisioned"),
    }


def render_hier(summary: Dict[str, Any]) -> str:
    """Render the budget-allocator section of ``repro trace report``."""
    lines = [
        f"  level    {sparkline(summary['level'], low=0.0, high=1.0)}",
        f"  budget W {sparkline(summary['mean_budget_w'])}",
    ]
    if summary["reward"]:
        lines.append(f"  reward   {sparkline(summary['reward'])}")
    lines.append(
        f"  final level {summary['level'][-1]:.2f}, final mean budget "
        f"{summary['mean_budget_w'][-1]:.1f} W"
    )
    if summary["provisioned"]:
        lines.append(
            f"  {summary['provisioned']} node(s) provisioned via policy transfer"
        )
    return "\n".join(lines)


def render_cluster(summary: Dict[str, Any]) -> str:
    """Render the cluster-aggregates section of ``repro trace report``."""
    lines = [
        f"  qos%    {sparkline(summary['qos_pct'], low=0.0, high=100.0)}",
        f"  power W {sparkline(summary['power_w'])}",
        f"  mean cluster power "
        f"{sum(summary['power_w']) / len(summary['power_w']):.1f} W, "
        f"cumulative energy {summary['energy_j'] / 1e3:.1f} kJ",
    ]
    for name in sorted(summary["services"]):
        s = summary["services"][name]
        lines.append(
            f"  {name:<12s} offered {s['offered_rps']:>9.0f} rps  "
            f"served {s['served_rps']:>9.0f} rps  qos {s['qos_pct']:5.1f}%  "
            f"worst p99 {s['worst_p99_ms']:.2f} ms"
        )
    return "\n".join(lines)


def render_timings(timings: Dict[str, Dict[str, float]]) -> str:
    """Render timing histograms as a tree of sections and sub-sections.

    A label ``a.b.c`` is shown indented under ``a.b`` when that parent
    label was also measured, with its share of the parent's total time —
    this is how the train-step breakdown (``agent.train.forward`` /
    ``.backward`` / ``.optim`` / ``.replay`` inside ``agent.train``)
    surfaces in ``repro trace report``.
    """
    if not timings:
        return "(no timings recorded)"
    measured = set(timings)

    def parent_of(label: str) -> Optional[str]:
        parts = label.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in measured:
                return candidate
        return None

    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for label in timings:
        parent = parent_of(label)
        if parent is None:
            roots.append(label)
        else:
            children.setdefault(parent, []).append(label)

    by_total = lambda label: -timings[label].get("total_s", 0.0)
    width = max(len(label) for label in timings) + 2
    lines = [
        f"  {'section':<{width}s} {'count':>7s} {'total s':>9s} {'mean ms':>9s} "
        f"{'p99 ms':>9s} {'share':>7s}"
    ]

    def emit(label: str, depth: int, parent_total: Optional[float]) -> None:
        s = timings[label]
        total = s.get("total_s", 0.0)
        shown = ("  " * depth) + label
        if not s.get("count"):
            lines.append(f"  {shown:<{width}s} {0:>7d}")
        else:
            share = (
                f"{100.0 * total / parent_total:6.1f}%"
                if parent_total and depth else f"{'':7s}"
            )
            lines.append(
                f"  {shown:<{width}s} {s['count']:>7d} {total:>9.3f} "
                f"{s['mean_ms']:>9.3f} {s['p99_ms']:>9.3f} {share}"
            )
        for child in sorted(children.get(label, []), key=by_total):
            emit(child, depth + 1, total)

    for root in sorted(roots, key=by_total):
        emit(root, 0, None)
    return "\n".join(lines)


def render_report(
    trace: Union[str, Path, Sequence[Dict[str, Any]]],
    bucket: int = 0,
    max_episodes: int = 20,
    timings: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Full text report: learning curve + violation timeline.

    ``timings`` (a manifest's timing-histogram block) appends a timing
    section rendered by :func:`render_timings`.
    """
    events = read_trace(trace) if isinstance(trace, (str, Path)) else list(trace)
    if not events:
        raise ConfigurationError("trace is empty")
    lines: List[str] = []

    curve = learning_curve(events, bucket=bucket)
    lines.append("Learning curve")
    lines.append(f"  qos%    {sparkline(curve['qos_pct'], low=0.0, high=100.0)}")
    if any(curve["reward"]):
        lines.append(f"  reward  {sparkline(curve['reward'])}")
    lines.append("")
    lines.append(
        series_table(
            {"reward": curve["reward"], "qos_pct": curve["qos_pct"]},
            index=[int(s) for s in curve["step"]],
            index_name="step",
        )
    )

    episodes = sorted(violation_episodes(events), key=lambda e: (e.start, e.service))
    lines.append("")
    lines.append(f"Violation timeline ({len(episodes)} episodes)")
    if not episodes:
        lines.append("  (no QoS violations recorded)")
    shown = episodes if len(episodes) <= max_episodes else (
        episodes[: max_episodes // 2] + episodes[-max_episodes // 2:]
    )
    skipped = len(episodes) - len(shown)
    for i, episode in enumerate(shown):
        if skipped and i == max_episodes // 2:
            lines.append(f"  ... {skipped} episodes omitted ...")
        lines.append(
            f"  t={episode.start:>6d}..{episode.end:<6d} {episode.service:<12s} "
            f"{episode.length:>5d} intervals, peak tardiness "
            f"{episode.peak_tardiness:.2f}x"
        )
    cluster = cluster_summary(events)
    if cluster is not None:
        lines.append("")
        lines.append(
            f"Cluster ({cluster['nodes']} nodes, {cluster['intervals']} intervals)"
        )
        lines.append(render_cluster(cluster))
    hier = hier_summary(events)
    if hier is not None:
        lines.append("")
        lines.append(
            f"Budget allocator ({hier['assignments']} assignments, "
            f"period {hier['period']})"
        )
        lines.append(render_hier(hier))
    if timings:
        lines.append("")
        lines.append("Timings")
        lines.append(render_timings(timings))
    return "\n".join(lines)


def longest_episode(
    events: Iterable[Dict[str, Any]], service: Optional[str] = None
) -> Optional[ViolationEpisode]:
    """The worst violation cascade (optionally for one service)."""
    episodes = [
        e for e in violation_episodes(events) if service is None or e.service == service
    ]
    if not episodes:
        return None
    return max(episodes, key=lambda e: (e.length, e.peak_tardiness))
