"""Dependency-free terminal charts.

The experiment reports and the CLI render time series and comparisons
directly in the terminal: sparklines for learning curves, horizontal bar
charts for normalised-energy comparisons, and aligned series tables.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def sparkline(
    values: Sequence[float],
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> str:
    """A one-line unicode sparkline of a series."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("sparkline needs at least one value")
    lo = float(data.min()) if low is None else low
    hi = float(data.max()) if high is None else high
    if hi <= lo:
        return _SPARK_LEVELS[0] * data.size
    scaled = (data - lo) / (hi - lo)
    indices = np.clip((scaled * (len(_SPARK_LEVELS) - 1)).round(), 0, len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(i)] for i in indices)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart with aligned labels.

    ``reference`` draws all bars relative to that value instead of the
    maximum (useful for normalised-energy plots where 1.0 = static).
    """
    if not values:
        raise ConfigurationError("bar_chart needs at least one entry")
    if width < 5:
        raise ConfigurationError(f"width must be >= 5, got {width}")
    top = reference if reference is not None else max(values.values())
    if top <= 0:
        raise ConfigurationError("bar scale must be positive")
    label_width = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        filled = int(round(min(value / top, 1.0) * width))
        bar = _BAR_CHAR * filled + "·" * (width - filled)
        lines.append(f"{name:<{label_width}s} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def series_table(
    columns: Mapping[str, Sequence[float]],
    index: Optional[Sequence] = None,
    index_name: str = "step",
    float_format: str = "{:8.2f}",
) -> str:
    """Aligned multi-column table for time series."""
    if not columns:
        raise ConfigurationError("series_table needs at least one column")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ConfigurationError(f"columns have mismatched lengths: {lengths}")
    n = lengths.pop()
    if index is None:
        index = list(range(n))
    if len(index) != n:
        raise ConfigurationError("index length does not match columns")
    names = list(columns)
    header = f"{index_name:>8s} " + " ".join(f"{name:>10s}" for name in names)
    lines = [header]
    for i in range(n):
        row = f"{str(index[i]):>8s} " + " ".join(
            f"{float_format.format(columns[name][i]):>10s}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)
