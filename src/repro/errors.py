"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class AllocationError(ReproError):
    """A resource allocation request could not be satisfied or is malformed."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NotFittedError(ReproError):
    """A model was used before being fitted/trained."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""


class ControlPlaneError(ReproError):
    """A control-plane operation failed (registry, lifecycle, rollout).

    Raised by :mod:`repro.ctrl` for domain-level failures: unknown or
    deregistered nodes, stale registration epochs (split-registry
    guards), illegal lifecycle transitions, and policy rollouts that
    cannot proceed. Transport-level failures raise :class:`RpcError`.
    """


class RpcError(ControlPlaneError):
    """A JSON-RPC call failed: transport, protocol, or remote error.

    Client-side, a remote error response is surfaced as the
    :class:`repro.ctrl.rpc.RpcRemoteError` subclass carrying the
    JSON-RPC error code; connection drops and malformed frames raise
    this class directly.
    """


class RpcTimeout(RpcError):
    """A JSON-RPC call did not complete within its deadline.

    Every :meth:`repro.ctrl.rpc.RpcClient.call` is bounded — a hung or
    partitioned peer turns into this exception, never an indefinite
    block.
    """


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, truncated, or incompatible.

    Raised by :mod:`repro.ckpt` whenever a checkpoint cannot be loaded —
    torn writes, wrong container kind, future format versions, or state
    trees that do not match the object being restored. Loading is
    stage-then-commit: when this is raised, the target object has not
    been mutated.
    """
