"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class AllocationError(ReproError):
    """A resource allocation request could not be satisfied or is malformed."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NotFittedError(ReproError):
    """A model was used before being fitted/trained."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""
