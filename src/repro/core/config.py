"""Twig runtime configuration.

Bundles the learning-agent hyper-parameters (paper Section IV), the reward
constants, and the monitoring settings into a single object with the
paper's values as defaults. ``fast()`` returns a scaled-down configuration
for tests and benchmarks where a 10 000-step learning phase is unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.core.reward import RewardParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TwigConfig:
    """All Twig knobs; defaults reproduce the paper's setup."""

    # learning agent (Section IV, Neural Network Parameters)
    learning_rate: float = 0.0025
    batch_size: int = 64
    discount: float = 0.99
    target_update_every: int = 150
    epsilon_mid_steps: int = 10_000     # epsilon 1 -> 0.1
    epsilon_final_steps: int = 25_000   # epsilon -> 0.01
    buffer_capacity: int = 100_000
    use_prioritized_replay: bool = True
    per_alpha: float = 0.6
    per_beta_start: float = 0.4
    shared_hidden: Sequence[int] = (512, 256)
    branch_hidden: int = 128
    dropout: float = 0.5
    min_buffer_size: int = 200
    train_every: int = 1
    gradient_steps: int = 1
    # monitoring (Section III-B1)
    eta: int = 5
    # reward (Equation 1)
    reward: RewardParams = field(default_factory=RewardParams)
    # mapping
    socket_index: int = 1
    max_cores: Optional[int] = None  # None = all cores of the socket
    # optional third action dimension: Intel-CAT LLC way partitioning (the
    # paper lists cache allocation as the natural next knob; its testbed
    # could not enable CAT, our substrate can)
    manage_llc: bool = False

    def __post_init__(self) -> None:
        if self.eta <= 0:
            raise ConfigurationError(f"eta must be positive, got {self.eta}")

    @classmethod
    def paper(cls) -> "TwigConfig":
        """The exact configuration of Section IV."""
        return cls()

    @classmethod
    def fast(cls, epsilon_mid_steps: int = 600, epsilon_final_steps: int = 1500) -> "TwigConfig":
        """Scaled-down learning schedule for tests/benchmarks.

        Learning *dynamics* are unchanged; only the annealing horizon, the
        network width, and the replay buffer shrink so experiments complete
        in seconds instead of simulated hours.
        """
        return cls(
            epsilon_mid_steps=epsilon_mid_steps,
            epsilon_final_steps=epsilon_final_steps,
            buffer_capacity=4_000,
            # A shorter horizon (the control problem is nearly a contextual
            # bandit) makes value propagation converge in far fewer steps;
            # the paper's 0.99 remains the default of TwigConfig.paper().
            discount=0.9,
            shared_hidden=(128, 64),
            branch_hidden=32,
            dropout=0.1,
            min_buffer_size=64,
            gradient_steps=2,
        )

    def scaled(self, **overrides) -> "TwigConfig":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)
