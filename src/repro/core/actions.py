"""Action-space encoding between BDQ branches and resource allocations.

Each learning agent (one per LC service) controls two action dimensions:
the number of cores (1..cores_per_socket) and the DVFS index
(0..len(ladder)-1). Branch 0 encodes ``num_cores - 1``; branch 1 encodes
the DVFS index directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.server.spec import ServerSpec


@dataclass(frozen=True)
class Allocation:
    """One service's requested resources.

    ``llc_ways`` is the optional Intel-CAT cache partition request
    (0 = unpartitioned); it is only meaningful when the action space is
    built with ``manage_llc=True``.
    """

    num_cores: int
    freq_index: int
    llc_ways: int = 0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.freq_index < 0:
            raise ConfigurationError(f"freq_index must be >= 0, got {self.freq_index}")
        if self.llc_ways < 0:
            raise ConfigurationError(f"llc_ways must be >= 0, got {self.llc_ways}")


class ActionSpace:
    """Maps between per-branch action indices and :class:`Allocation`.

    With ``manage_llc=True`` a third branch controls the Intel-CAT way
    quota (0 = unpartitioned .. llc_ways = the whole cache); this is the
    paper's hypothetical third action dimension from the memory-complexity
    discussion, made concrete.
    """

    def __init__(self, spec: ServerSpec, max_cores: int = 0, manage_llc: bool = False):
        self.spec = spec
        self.max_cores = max_cores or spec.cores_per_socket
        if not 1 <= self.max_cores <= spec.cores_per_socket:
            raise ConfigurationError(
                f"max_cores must be in [1, {spec.cores_per_socket}], got {self.max_cores}"
            )
        self.n_freqs = len(spec.dvfs)
        self.manage_llc = manage_llc
        self.n_way_choices = spec.socket.llc_ways + 1  # 0..ways

    @property
    def branch_sizes(self) -> List[int]:
        """Discrete action counts per dimension."""
        sizes = [self.max_cores, self.n_freqs]
        if self.manage_llc:
            sizes.append(self.n_way_choices)
        return sizes

    @property
    def n_branches(self) -> int:
        return 3 if self.manage_llc else 2

    def decode(self, branch_actions: Sequence[int]) -> Allocation:
        """BDQ branch outputs -> an allocation request."""
        if len(branch_actions) != self.n_branches:
            raise ConfigurationError(
                f"expected {self.n_branches} branch actions, got {len(branch_actions)}"
            )
        cores_action, freq_action = int(branch_actions[0]), int(branch_actions[1])
        if not 0 <= cores_action < self.max_cores:
            raise ConfigurationError(f"cores action {cores_action} out of range")
        if not 0 <= freq_action < self.n_freqs:
            raise ConfigurationError(f"dvfs action {freq_action} out of range")
        ways = 0
        if self.manage_llc:
            ways = int(branch_actions[2])
            if not 0 <= ways < self.n_way_choices:
                raise ConfigurationError(f"llc ways action {ways} out of range")
        return Allocation(num_cores=cores_action + 1, freq_index=freq_action, llc_ways=ways)

    def encode(self, allocation: Allocation) -> List[int]:
        """An allocation request -> BDQ branch outputs."""
        if not 1 <= allocation.num_cores <= self.max_cores:
            raise ConfigurationError(f"num_cores {allocation.num_cores} out of range")
        if not 0 <= allocation.freq_index < self.n_freqs:
            raise ConfigurationError(f"freq_index {allocation.freq_index} out of range")
        actions = [allocation.num_cores - 1, allocation.freq_index]
        if self.manage_llc:
            if allocation.llc_ways >= self.n_way_choices:
                raise ConfigurationError(f"llc_ways {allocation.llc_ways} out of range")
            actions.append(allocation.llc_ways)
        return actions

    def frequency_ghz(self, allocation: Allocation) -> float:
        return self.spec.dvfs[allocation.freq_index]
