"""Twig's first-order per-service power estimate (Equation 2).

    Power_app = kappa * load + sigma * num_cores + omega^2 * DVFS

``load`` is the service load as a percentage of its maximum, ``num_cores``
the allocated core count and ``DVFS`` the frequency in GHz. Real RAPL only
reports socket-level power, so Twig needs this estimate to attribute power
to each agent's own actions inside the reward; evaluation always reports
true (simulated RAPL) power.

Per the paper, coefficients are found with a *random grid search with
5-fold cross-validation across the possible parameter space*; a closed-form
least-squares fit is provided as well for comparison/ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, NotFittedError, ShapeError


@dataclass(frozen=True)
class PowerSample:
    """One profiling observation of a service's dynamic power."""

    load_pct: float      # percentage of the service's maximum load (0-100)
    num_cores: int
    dvfs_ghz: float
    dynamic_power_w: float


class ServicePowerModel:
    """Equation 2: P = kappa*load + sigma*cores + omega^2 * dvfs."""

    def __init__(self) -> None:
        self.kappa: Optional[float] = None
        self.sigma: Optional[float] = None
        self.omega: Optional[float] = None
        self.cv_mse: Optional[float] = None
        self.r2: Optional[float] = None

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _design(samples: Sequence[PowerSample]) -> Tuple[np.ndarray, np.ndarray]:
        if len(samples) < 5:
            raise ConfigurationError(f"need >= 5 samples to fit, got {len(samples)}")
        features = np.array(
            [[s.load_pct, s.num_cores, s.dvfs_ghz] for s in samples], dtype=np.float64
        )
        targets = np.array([s.dynamic_power_w for s in samples], dtype=np.float64)
        return features, targets

    def fit_random_search(
        self,
        samples: Sequence[PowerSample],
        rng: np.random.Generator,
        n_candidates: int = 4000,
        folds: int = 5,
        kappa_range: Tuple[float, float] = (0.0, 2.0),
        sigma_range: Tuple[float, float] = (0.0, 5.0),
        omega_range: Tuple[float, float] = (0.0, 4.0),
    ) -> "ServicePowerModel":
        """The paper's fit: random grid search + k-fold cross validation.

        Each candidate coefficient triple is scored by its mean CV MSE; the
        best candidate's coefficients are kept and the final MSE/R^2 are
        computed on the full data.
        """
        features, targets = self._design(samples)
        n = features.shape[0]
        folds = min(folds, n)
        indices = rng.permutation(n)
        fold_slices = np.array_split(indices, folds)

        candidates = np.column_stack(
            [
                rng.uniform(*kappa_range, size=n_candidates),
                rng.uniform(*sigma_range, size=n_candidates),
                rng.uniform(*omega_range, size=n_candidates),
            ]
        )
        best_mse = np.inf
        best = candidates[0]
        for cand in candidates:
            mse_sum = 0.0
            for fold in fold_slices:
                mask = np.ones(n, dtype=bool)
                mask[fold] = False
                # Equation 2 has no fitted intercept; validation error on the
                # held-out fold is the candidate's score.
                pred = self._predict_array(features[fold], *cand)
                mse_sum += float(np.mean((pred - targets[fold]) ** 2))
            mse = mse_sum / folds
            if mse < best_mse:
                best_mse = mse
                best = cand
        self.kappa, self.sigma, self.omega = (float(c) for c in best)
        self.cv_mse = float(best_mse)
        self._finalise(features, targets)
        return self

    def fit_least_squares(self, samples: Sequence[PowerSample]) -> "ServicePowerModel":
        """Closed-form fit of Equation 2 (omega^2 = max(coef, 0))."""
        features, targets = self._design(samples)
        coef, *_ = np.linalg.lstsq(features, targets, rcond=None)
        self.kappa, self.sigma = float(coef[0]), float(coef[1])
        self.omega = float(np.sqrt(max(coef[2], 0.0)))
        self.cv_mse = None
        self._finalise(features, targets)
        return self

    def _finalise(self, features: np.ndarray, targets: np.ndarray) -> None:
        pred = self._predict_array(features, self.kappa, self.sigma, self.omega)
        residual = float(np.sum((targets - pred) ** 2))
        total = float(np.sum((targets - targets.mean()) ** 2))
        self.r2 = 1.0 - residual / total if total > 0 else 0.0

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _predict_array(
        features: np.ndarray, kappa: float, sigma: float, omega: float
    ) -> np.ndarray:
        return (
            kappa * features[:, 0]
            + sigma * features[:, 1]
            + omega * omega * features[:, 2]
        )

    @property
    def fitted(self) -> bool:
        return self.kappa is not None

    def predict(self, load_pct: float, num_cores: int, dvfs_ghz: float) -> float:
        """Estimated dynamic power of the service, in watts (floored at a
        small positive value so reward ratios stay finite)."""
        if not self.fitted:
            raise NotFittedError("ServicePowerModel.predict called before fit")
        value = (
            self.kappa * load_pct + self.sigma * num_cores + self.omega ** 2 * dvfs_ghz
        )
        return max(value, 0.5)

    def paae_pct(self, samples: Sequence[PowerSample]) -> float:
        """Percentage absolute average error on a sample set (Figure 4)."""
        if not self.fitted:
            raise NotFittedError("ServicePowerModel.paae_pct called before fit")
        features, targets = self._design(samples)
        if np.any(targets <= 0):
            raise ShapeError("PAAE requires positive measured powers")
        pred = self._predict_array(features, self.kappa, self.sigma, self.omega)
        return float(np.mean(np.abs(pred - targets) / targets) * 100.0)


def fit_power_model(
    samples: Sequence[PowerSample],
    rng: np.random.Generator,
    method: str = "random_search",
    **kwargs,
) -> ServicePowerModel:
    """Fit Equation 2 with the requested method."""
    model = ServicePowerModel()
    if method == "random_search":
        return model.fit_random_search(samples, rng, **kwargs)
    if method == "least_squares":
        return model.fit_least_squares(samples)
    raise ConfigurationError(f"unknown fit method {method!r}")
