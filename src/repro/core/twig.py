"""The Twig runtime (Figure 3): system monitor + learning agent + mapper.

One ``Twig`` instance manages K colocated LC services with a single
multi-agent BDQ (Twig-S is the K = 1 special case, Twig-C the K >= 2
case). Each control interval it:

1. gathers per-service PMCs through the :class:`SystemMonitor`
   (eta-smoothed, max-normalised),
2. computes the Equation-1 reward per service from measured tail latency
   and the Equation-2 per-service power estimate,
3. feeds the (state, action, reward, next-state) transition to the deep
   Q-learning agent,
4. selects the next per-service (core count, DVFS) actions, and
5. resolves them to concrete core pins through the mapper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.actions import ActionSpace, Allocation
from repro.core.config import TwigConfig
from repro.core.manager import TaskManager
from repro.core.mapper import Mapper
from repro.core.power_model import ServicePowerModel
from repro.core.reward import RewardBreakdown, reward_components
from repro.errors import ConfigurationError
from repro.obs.events import make_event
from repro.obs.sink import NULL_SINK, TraceSink
from repro.obs.timing import TimingRegistry
from repro.pmc.counters import CounterCatalogue
from repro.pmc.monitor import SystemMonitor
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition
from repro.server.machine import CoreAssignment
from repro.server.power import PowerModel
from repro.server.spec import ServerSpec
from repro.services.profiles import ServiceProfile
from repro.sim.environment import StepResult


class Twig(TaskManager):
    """QoS-aware, energy-minimising task manager for K LC services."""

    def __init__(
        self,
        profiles: Sequence[ServiceProfile],
        config: TwigConfig,
        rng: np.random.Generator,
        spec: Optional[ServerSpec] = None,
        power_models: Optional[Mapping[str, ServicePowerModel]] = None,
        qos_targets: Optional[Mapping[str, float]] = None,
        trace: Optional[TraceSink] = None,
        timings: Optional[TimingRegistry] = None,
    ):
        if not profiles:
            raise ConfigurationError("Twig needs at least one service profile")
        self.spec = spec or ServerSpec()
        self.config = config
        self._rng = rng
        self.profiles: Dict[str, ServiceProfile] = {p.name: p for p in profiles}
        self.service_order: List[str] = [p.name for p in profiles]
        self.name = "twig-s" if len(profiles) == 1 else "twig-c"

        self.qos_targets = {
            name: (qos_targets or {}).get(name, self.profiles[name].qos_target_ms)
            for name in self.service_order
        }
        self.power_models = dict(power_models or {})
        self.max_power_w = PowerModel(self.spec).max_power_w()

        max_cores = config.max_cores or self.spec.cores_per_socket
        self.action_space = ActionSpace(
            self.spec, max_cores=max_cores, manage_llc=config.manage_llc
        )
        self.mapper = Mapper(self.spec, socket_index=config.socket_index)

        catalogue = CounterCatalogue(self.spec)
        self.monitor = SystemMonitor(catalogue.max_values(), eta=config.eta)

        k = len(self.service_order)
        agent_config = BDQAgentConfig(
            state_dim=self.monitor.state_dim * k,
            branch_sizes=[self.action_space.branch_sizes for _ in range(k)],
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            discount=config.discount,
            target_update_every=config.target_update_every,
            epsilon_mid_steps=config.epsilon_mid_steps,
            epsilon_final_steps=config.epsilon_final_steps,
            buffer_capacity=config.buffer_capacity,
            use_prioritized_replay=config.use_prioritized_replay,
            per_alpha=config.per_alpha,
            per_beta_start=config.per_beta_start,
            per_beta_steps=config.epsilon_final_steps,
            min_buffer_size=config.min_buffer_size,
            shared_hidden=config.shared_hidden,
            branch_hidden=config.branch_hidden,
            dropout=config.dropout,
            train_every=config.train_every,
            gradient_steps=config.gradient_steps,
        )
        self.trace = trace or NULL_SINK
        self.agent = BDQAgent(agent_config, rng, trace=self.trace, timings=timings)

        self._prev_state: Optional[np.ndarray] = None
        self._prev_actions: Optional[List[List[int]]] = None
        self._last_allocations: Dict[str, Allocation] = {}
        self._last_estimated_power: Dict[str, float] = {}
        self.last_rewards: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # TaskManager interface
    # ------------------------------------------------------------------ #
    def initial_assignments(self) -> Dict[str, CoreAssignment]:
        """Start like the paper's experiments: all cores at max DVFS."""
        top = len(self.spec.dvfs) - 1
        allocations = {
            name: Allocation(num_cores=self.action_space.max_cores, freq_index=top)
            for name in self.service_order
        }
        self._last_allocations = allocations
        return self.mapper.map(allocations)

    def update(self, result: StepResult) -> Dict[str, CoreAssignment]:
        state = self._build_state(result)
        breakdowns = self._compute_rewards(result)
        rewards = {name: b.total for name, b in breakdowns.items()}
        if self._prev_state is not None and self._prev_actions is not None:
            self.agent.observe(
                Transition(
                    state=self._prev_state,
                    actions=self._prev_actions,
                    rewards=np.array([rewards[n] for n in self.service_order]),
                    next_state=state,
                )
            )
        actions = self.agent.act(state)
        allocations = {
            name: self.action_space.decode(actions[k])
            for k, name in enumerate(self.service_order)
        }
        if self.trace.enabled:
            self._emit_decisions(result, breakdowns, allocations)
        self._prev_state = state
        self._prev_actions = actions
        self._last_allocations = allocations
        self.last_rewards = rewards
        return self.mapper.map(allocations)

    def attach_obs(self, trace: Optional[TraceSink], timings: Optional[TimingRegistry]) -> None:
        """Wire a trace sink / timing registry in after construction.

        The experiment runner uses this so tracing can be switched on for
        managers built deep inside experiment modules.
        """
        if trace is not None:
            self.trace = trace
            self.agent.trace = trace
        if timings is not None:
            self.agent.timings = timings

    def _emit_decisions(
        self,
        result: StepResult,
        breakdowns: Mapping[str, RewardBreakdown],
        allocations: Mapping[str, Allocation],
    ) -> None:
        """One ``reward`` + one ``action`` event per service for interval t."""
        epsilon = self.agent.epsilon()
        for name in self.service_order:
            breakdown = breakdowns[name]
            observation = result.observations[name]
            self.trace.emit(
                make_event(
                    "reward",
                    result.time,
                    service=name,
                    reward=breakdown.total,
                    qos_rew=breakdown.qos_rew,
                    power_rew=breakdown.power_rew,
                    violation=breakdown.violation,
                    measured_qos_ms=observation.p99_ms,
                    estimated_power_w=self._last_estimated_power.get(name, 0.0),
                )
            )
            allocation = allocations[name]
            self.trace.emit(
                make_event(
                    "action",
                    result.time,
                    service=name,
                    cores=allocation.num_cores,
                    freq_index=allocation.freq_index,
                    frequency_ghz=self.spec.dvfs[allocation.freq_index],
                    llc_ways=allocation.llc_ways,
                    epsilon=epsilon,
                )
            )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _build_state(self, result: StepResult) -> np.ndarray:
        parts = []
        for name in self.service_order:
            observation = result.observations[name]
            parts.append(self.monitor.observe(name, observation.pmcs))
        return np.concatenate(parts)

    def _compute_rewards(self, result: StepResult) -> Dict[str, RewardBreakdown]:
        rewards: Dict[str, RewardBreakdown] = {}
        for name in self.service_order:
            observation = result.observations[name]
            estimated = self._estimate_power(name, observation.interval.arrival_rate)
            self._last_estimated_power[name] = estimated
            rewards[name] = reward_components(
                measured_qos_ms=observation.p99_ms,
                qos_target_ms=self.qos_targets[name],
                max_power_w=self.max_power_w,
                estimated_power_w=estimated,
                params=self.config.reward,
            )
        return rewards

    def _estimate_power(self, name: str, arrival_rate: float) -> float:
        """Equation-2 estimate of the service's power for its allocation.

        Falls back to the physical CV^2 f model when no fitted Equation-2
        model was supplied (equivalent information, used mainly in tests).
        """
        allocation = self._last_allocations.get(
            name,
            Allocation(self.action_space.max_cores, len(self.spec.dvfs) - 1),
        )
        freq = self.spec.dvfs[allocation.freq_index]
        model = self.power_models.get(name)
        if model is not None and model.fitted:
            load_pct = 100.0 * arrival_rate / self.profiles[name].max_load_rps
            return model.predict(load_pct, allocation.num_cores, freq)
        physical = PowerModel(self.spec)
        profile = self.profiles[name]
        capacity = profile.capacity_rps(allocation.num_cores, freq, self.spec.dvfs.max_ghz)
        utilization = float(np.clip(arrival_rate / max(capacity, 1e-9), 0.0, 1.0))
        effective = utilization + profile.active_idle_util * (1.0 - utilization)
        per_core = physical.core_dynamic_w(freq, effective)
        return max(per_core * allocation.num_cores, 0.5)

    # ------------------------------------------------------------------ #
    # lifecycle operations
    # ------------------------------------------------------------------ #
    def exploit(self) -> None:
        """Switch to pure exploitation (recommended once trained)."""
        self.agent.exploring_frozen = True

    def save(self, path) -> None:
        """Checkpoint the learned network weights to an ``.npz`` file."""
        self.agent.save(path)

    def load(self, path) -> None:
        """Restore network weights saved with :meth:`save`. The
        architecture (services, branch sizes, hidden widths) must match."""
        self.agent.load(path)

    def transfer_to(
        self,
        old_name: str,
        new_profile: ServiceProfile,
        qos_target_ms: Optional[float] = None,
        power_model: Optional[ServicePowerModel] = None,
    ) -> None:
        """Swap a managed service and transfer-learn (Figures 8/9).

        The shared representation is kept; every head's output layer is
        re-randomised and the monitor history for the slot is cleared.
        """
        if old_name not in self.profiles:
            raise ConfigurationError(f"unknown service {old_name!r}")
        index = self.service_order.index(old_name)
        del self.profiles[old_name]
        del self.qos_targets[old_name]
        self.power_models.pop(old_name, None)
        self.service_order[index] = new_profile.name
        self.profiles[new_profile.name] = new_profile
        self.qos_targets[new_profile.name] = (
            qos_target_ms if qos_target_ms is not None else new_profile.qos_target_ms
        )
        if power_model is not None:
            self.power_models[new_profile.name] = power_model
        self.monitor.reset(old_name)
        self.agent.transfer(self._rng)
        self._prev_state = None
        self._prev_actions = None
        self._last_allocations.pop(old_name, None)
        self._last_estimated_power.pop(old_name, None)
