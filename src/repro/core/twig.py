"""The Twig runtime (Figure 3): system monitor + learning agent + mapper.

One ``Twig`` instance manages K colocated LC services with a single
multi-agent BDQ (Twig-S is the K = 1 special case, Twig-C the K >= 2
case). Each control interval it:

1. gathers per-service PMCs through the :class:`SystemMonitor`
   (eta-smoothed, max-normalised),
2. computes the Equation-1 reward per service from measured tail latency
   and the Equation-2 per-service power estimate,
3. feeds the (state, action, reward, next-state) transition to the deep
   Q-learning agent,
4. selects the next per-service (core count, DVFS) actions, and
5. resolves them to concrete core pins through the mapper.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.ckpt.checkpoint import checkpoint_kind, load_state, save_state
from repro.core.actions import ActionSpace, Allocation
from repro.core.config import TwigConfig
from repro.core.manager import TaskManager
from repro.core.mapper import Mapper
from repro.core.power_model import ServicePowerModel
from repro.core.reward import RewardBreakdown, reward_components
from repro.errors import CheckpointError, ConfigurationError
from repro.obs.events import make_event
from repro.obs.sink import NULL_SINK, TraceSink
from repro.obs.timing import TimingRegistry
from repro.pmc.counters import CounterCatalogue
from repro.pmc.monitor import SystemMonitor
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition
from repro.server.machine import CoreAssignment
from repro.server.power import PowerModel
from repro.server.spec import ServerSpec
from repro.services.profiles import ServiceProfile
from repro.sim.environment import StepResult


class Twig(TaskManager):
    """QoS-aware, energy-minimising task manager for K LC services."""

    def __init__(
        self,
        profiles: Sequence[ServiceProfile],
        config: TwigConfig,
        rng: np.random.Generator,
        spec: Optional[ServerSpec] = None,
        power_models: Optional[Mapping[str, ServicePowerModel]] = None,
        qos_targets: Optional[Mapping[str, float]] = None,
        trace: Optional[TraceSink] = None,
        timings: Optional[TimingRegistry] = None,
    ):
        if not profiles:
            raise ConfigurationError("Twig needs at least one service profile")
        self.spec = spec or ServerSpec()
        self.config = config
        self._rng = rng
        self.profiles: Dict[str, ServiceProfile] = {p.name: p for p in profiles}
        self.service_order: List[str] = [p.name for p in profiles]
        self.name = "twig-s" if len(profiles) == 1 else "twig-c"

        self.qos_targets = {
            name: (qos_targets or {}).get(name, self.profiles[name].qos_target_ms)
            for name in self.service_order
        }
        self.power_models = dict(power_models or {})
        self.max_power_w = PowerModel(self.spec).max_power_w()

        max_cores = config.max_cores or self.spec.cores_per_socket
        self.action_space = ActionSpace(
            self.spec, max_cores=max_cores, manage_llc=config.manage_llc
        )
        self.mapper = Mapper(self.spec, socket_index=config.socket_index)

        catalogue = CounterCatalogue(self.spec)
        self.monitor = SystemMonitor(catalogue.max_values(), eta=config.eta)

        k = len(self.service_order)
        agent_config = BDQAgentConfig(
            state_dim=self.monitor.state_dim * k,
            branch_sizes=[self.action_space.branch_sizes for _ in range(k)],
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            discount=config.discount,
            target_update_every=config.target_update_every,
            epsilon_mid_steps=config.epsilon_mid_steps,
            epsilon_final_steps=config.epsilon_final_steps,
            buffer_capacity=config.buffer_capacity,
            use_prioritized_replay=config.use_prioritized_replay,
            per_alpha=config.per_alpha,
            per_beta_start=config.per_beta_start,
            per_beta_steps=config.epsilon_final_steps,
            min_buffer_size=config.min_buffer_size,
            shared_hidden=config.shared_hidden,
            branch_hidden=config.branch_hidden,
            dropout=config.dropout,
            train_every=config.train_every,
            gradient_steps=config.gradient_steps,
        )
        self.trace = trace or NULL_SINK
        self.agent = BDQAgent(agent_config, rng, trace=self.trace, timings=timings)

        self._prev_state: Optional[np.ndarray] = None
        self._prev_actions: Optional[List[List[int]]] = None
        self._last_allocations: Dict[str, Allocation] = {}
        self._last_estimated_power: Dict[str, float] = {}
        self.last_rewards: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # TaskManager interface
    # ------------------------------------------------------------------ #
    def initial_assignments(self) -> Dict[str, CoreAssignment]:
        """Start like the paper's experiments: all cores at max DVFS."""
        top = len(self.spec.dvfs) - 1
        allocations = {
            name: Allocation(num_cores=self.action_space.max_cores, freq_index=top)
            for name in self.service_order
        }
        self._last_allocations = allocations
        return self.mapper.map(allocations)

    def update(self, result: StepResult) -> Dict[str, CoreAssignment]:
        state = self._build_state(result)
        degraded = self._degraded_services(result)
        if degraded:
            # Graceful degradation: telemetry for at least one service is
            # unusable (PMC dropout/NaN or a crashed service reporting NaN
            # latency). Acting on garbage state — or learning from a
            # transition that spans the gap — would corrupt the policy, so
            # hold the last known-good allocation and break the transition
            # chain until telemetry recovers.
            if self.trace.enabled:
                self.trace.emit(
                    make_event(
                        "degraded",
                        result.time,
                        services=sorted(degraded),
                        held_allocation=True,
                    )
                )
            self._prev_state = None
            self._prev_actions = None
            if not self._last_allocations:
                return self.initial_assignments()
            return self.mapper.map(self._last_allocations)
        breakdowns = self._compute_rewards(result)
        rewards = {name: b.total for name, b in breakdowns.items()}
        if self._prev_state is not None and self._prev_actions is not None:
            self.agent.observe(
                Transition(
                    state=self._prev_state,
                    actions=self._prev_actions,
                    rewards=np.array([rewards[n] for n in self.service_order]),
                    next_state=state,
                )
            )
        actions = self.agent.act(state)
        allocations = {
            name: self.action_space.decode(actions[k])
            for k, name in enumerate(self.service_order)
        }
        if self.trace.enabled:
            self._emit_decisions(result, breakdowns, allocations)
        self._prev_state = state
        self._prev_actions = actions
        self._last_allocations = allocations
        self.last_rewards = rewards
        return self.mapper.map(allocations)

    def attach_obs(self, trace: Optional[TraceSink], timings: Optional[TimingRegistry]) -> None:
        """Wire a trace sink / timing registry in after construction.

        The experiment runner uses this so tracing can be switched on for
        managers built deep inside experiment modules.
        """
        if trace is not None:
            self.trace = trace
            self.agent.trace = trace
        if timings is not None:
            self.agent.timings = timings

    def _emit_decisions(
        self,
        result: StepResult,
        breakdowns: Mapping[str, RewardBreakdown],
        allocations: Mapping[str, Allocation],
    ) -> None:
        """One ``reward`` + one ``action`` event per service for interval t."""
        epsilon = self.agent.epsilon()
        for name in self.service_order:
            breakdown = breakdowns[name]
            observation = result.observations[name]
            self.trace.emit(
                make_event(
                    "reward",
                    result.time,
                    service=name,
                    reward=breakdown.total,
                    qos_rew=breakdown.qos_rew,
                    power_rew=breakdown.power_rew,
                    violation=breakdown.violation,
                    measured_qos_ms=observation.p99_ms,
                    estimated_power_w=self._last_estimated_power.get(name, 0.0),
                )
            )
            allocation = allocations[name]
            self.trace.emit(
                make_event(
                    "action",
                    result.time,
                    service=name,
                    cores=allocation.num_cores,
                    freq_index=allocation.freq_index,
                    frequency_ghz=self.spec.dvfs[allocation.freq_index],
                    llc_ways=allocation.llc_ways,
                    epsilon=epsilon,
                )
            )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _build_state(self, result: StepResult) -> np.ndarray:
        parts = []
        for name in self.service_order:
            observation = result.observations[name]
            parts.append(self.monitor.observe(name, observation.pmcs))
        return np.concatenate(parts)

    def _degraded_services(self, result: StepResult) -> List[str]:
        """Services whose telemetry this interval cannot be acted upon.

        Combines the monitor's PMC-level rejection (non-finite counter
        readings, see :attr:`SystemMonitor.degraded`) with non-finite
        latency observations (a crashed service reports NaN p99).
        """
        degraded = {
            name for name in self.service_order if name in self.monitor.degraded
        }
        for name in self.service_order:
            if not np.isfinite(result.observations[name].p99_ms):
                degraded.add(name)
        return sorted(degraded)

    def _compute_rewards(self, result: StepResult) -> Dict[str, RewardBreakdown]:
        rewards: Dict[str, RewardBreakdown] = {}
        for name in self.service_order:
            observation = result.observations[name]
            estimated = self._estimate_power(name, observation.interval.arrival_rate)
            self._last_estimated_power[name] = estimated
            rewards[name] = reward_components(
                measured_qos_ms=observation.p99_ms,
                qos_target_ms=self.qos_targets[name],
                max_power_w=self.max_power_w,
                estimated_power_w=estimated,
                params=self.config.reward,
            )
        return rewards

    def _estimate_power(self, name: str, arrival_rate: float) -> float:
        """Equation-2 estimate of the service's power for its allocation.

        Falls back to the physical CV^2 f model when no fitted Equation-2
        model was supplied (equivalent information, used mainly in tests).
        """
        allocation = self._last_allocations.get(
            name,
            Allocation(self.action_space.max_cores, len(self.spec.dvfs) - 1),
        )
        freq = self.spec.dvfs[allocation.freq_index]
        model = self.power_models.get(name)
        if model is not None and model.fitted:
            load_pct = 100.0 * arrival_rate / self.profiles[name].max_load_rps
            return model.predict(load_pct, allocation.num_cores, freq)
        physical = PowerModel(self.spec)
        profile = self.profiles[name]
        capacity = profile.capacity_rps(allocation.num_cores, freq, self.spec.dvfs.max_ghz)
        utilization = float(np.clip(arrival_rate / max(capacity, 1e-9), 0.0, 1.0))
        effective = utilization + profile.active_idle_util * (1.0 - utilization)
        per_core = physical.core_dynamic_w(freq, effective)
        return max(per_core * allocation.num_cores, 0.5)

    # ------------------------------------------------------------------ #
    # lifecycle operations
    # ------------------------------------------------------------------ #
    def exploit(self) -> None:
        """Switch to pure exploitation (recommended once trained)."""
        self.agent.exploring_frozen = True

    #: Checkpoint kind tag for full manager state (see :mod:`repro.ckpt`).
    CKPT_KIND: ClassVar[str] = "twig"

    def state_dict(self) -> Dict[str, Any]:
        """Complete manager state for crash-safe resume.

        Besides the agent (which carries the shared RNG — Twig and its
        agent draw from one generator), this captures the control-loop
        context: the pending transition half (prev state/actions), the
        last allocations held per service, monitor smoothing history, and
        the reward bookkeeping used by trace events.
        """
        tree: Dict[str, Any] = {
            "services": list(self.service_order),
            "agent": self.agent.state_dict(),
            "monitor": self.monitor.state_dict(),
            "prev_actions": (
                None
                if self._prev_actions is None
                else [[int(a) for a in branch] for branch in self._prev_actions]
            ),
            "last_allocations": {
                name: {
                    "num_cores": allocation.num_cores,
                    "freq_index": allocation.freq_index,
                    "llc_ways": allocation.llc_ways,
                }
                for name, allocation in self._last_allocations.items()
            },
            "last_estimated_power": {
                name: float(value) for name, value in self._last_estimated_power.items()
            },
            "last_rewards": {name: float(value) for name, value in self.last_rewards.items()},
        }
        if self._prev_state is not None:
            tree["prev_state"] = np.asarray(self._prev_state, dtype=np.float64).copy()
        return tree

    def load_state_dict(self, tree: Dict[str, Any]) -> None:
        """Restore state from :meth:`state_dict` (stage-then-commit)."""
        try:
            services = [str(name) for name in list(tree["services"])]
            agent_tree = dict(tree["agent"])
            monitor_tree = dict(tree["monitor"])
            prev_actions = tree["prev_actions"]
            raw_allocations = dict(tree["last_allocations"])
            estimated_power = {
                str(k): float(v) for k, v in dict(tree["last_estimated_power"]).items()
            }
            last_rewards = {str(k): float(v) for k, v in dict(tree["last_rewards"]).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed twig checkpoint: {exc}") from exc
        if services != self.service_order:
            raise CheckpointError(
                f"checkpoint manages services {services}, this Twig manages {self.service_order}"
            )
        prev_state = tree.get("prev_state")
        if prev_state is not None:
            prev_state = np.asarray(prev_state, dtype=np.float64).reshape(-1)
            if prev_state.shape[0] != self.agent.config.state_dim:
                raise CheckpointError(
                    f"checkpoint prev_state dim {prev_state.shape[0]} != "
                    f"state dim {self.agent.config.state_dim}"
                )
        if prev_actions is not None:
            try:
                prev_actions = [[int(a) for a in branch] for branch in prev_actions]
            except (TypeError, ValueError) as exc:
                raise CheckpointError(f"malformed prev_actions: {exc}") from exc
        try:
            allocations = {
                str(name): Allocation(
                    num_cores=int(fields["num_cores"]),
                    freq_index=int(fields["freq_index"]),
                    llc_ways=int(fields.get("llc_ways", 0)),
                )
                for name, fields in raw_allocations.items()
            }
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise CheckpointError(f"malformed allocation in checkpoint: {exc}") from exc
        # The agent load (stage-then-commit itself) goes first: it is the
        # part that can still reject the checkpoint.
        self.agent.load_state_dict(agent_tree)
        self.monitor.load_state_dict(monitor_tree)
        self._prev_state = prev_state
        self._prev_actions = prev_actions
        self._last_allocations = allocations
        self._last_estimated_power = estimated_power
        self.last_rewards = last_rewards

    def save(self, path) -> None:
        """Atomically checkpoint the full manager state (see repro.ckpt)."""
        save_state(path, self.CKPT_KIND, self.state_dict())

    def load(self, path) -> None:
        """Restore a checkpoint written by :meth:`save`.

        Also accepts bare agent checkpoints and legacy weight-only
        ``.npz`` files (both restore the agent only; the legacy path warns
        that training state is unrecoverable). The architecture (services,
        branch sizes, hidden widths) must match.
        """
        kind = checkpoint_kind(path)
        if kind is None or kind == BDQAgent.CKPT_KIND:
            self.agent.load(path)
            return
        self.load_state_dict(load_state(path, kind=self.CKPT_KIND))

    def transfer_to(
        self,
        old_name: str,
        new_profile: ServiceProfile,
        qos_target_ms: Optional[float] = None,
        power_model: Optional[ServicePowerModel] = None,
    ) -> None:
        """Swap a managed service and transfer-learn (Figures 8/9).

        The shared representation is kept; every head's output layer is
        re-randomised and the monitor history for the slot is cleared.
        """
        if old_name not in self.profiles:
            raise ConfigurationError(f"unknown service {old_name!r}")
        index = self.service_order.index(old_name)
        del self.profiles[old_name]
        del self.qos_targets[old_name]
        self.power_models.pop(old_name, None)
        self.service_order[index] = new_profile.name
        self.profiles[new_profile.name] = new_profile
        self.qos_targets[new_profile.name] = (
            qos_target_ms if qos_target_ms is not None else new_profile.qos_target_ms
        )
        if power_model is not None:
            self.power_models[new_profile.name] = power_model
        self.monitor.reset(old_name)
        self.agent.transfer(self._rng)
        self._prev_state = None
        self._prev_actions = None
        self._last_allocations.pop(old_name, None)
        self._last_estimated_power.pop(old_name, None)
