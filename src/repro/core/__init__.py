"""Twig itself: the QoS-aware, energy-minimising task manager.

- :mod:`repro.core.actions` — the per-service action space (core count x
  DVFS index) and its encoding as BDQ branches.
- :mod:`repro.core.reward` — Equation 1: QoS reward + theta x power reward
  when the target is met, a capped polynomial penalty when violated.
- :mod:`repro.core.power_model` — Equation 2: the first-order per-service
  power estimate fitted by random grid search with 5-fold CV, used only
  inside the reward.
- :mod:`repro.core.mapper` — core placement with cache-locality ordering,
  DVFS programming, and resource arbitration for conflicting requests.
- :mod:`repro.core.twig` — the runtime (Figure 3): system monitor +
  learning agent + mapper, in Twig-S (single service) and Twig-C
  (colocated) variants.
"""

from repro.core.actions import ActionSpace, Allocation
from repro.core.config import TwigConfig
from repro.core.mapper import Mapper
from repro.core.power_model import ServicePowerModel, fit_power_model
from repro.core.reward import RewardParams, compute_reward
from repro.core.twig import Twig

__all__ = [
    "ActionSpace",
    "Allocation",
    "Mapper",
    "RewardParams",
    "ServicePowerModel",
    "Twig",
    "TwigConfig",
    "compute_reward",
    "fit_power_model",
]
