"""The task-manager interface shared by Twig and the baselines.

A task manager is driven by the experiment runner in lock-step with the
environment:

    assignments = manager.initial_assignments()
    loop:
        result = env.step(assignments)
        assignments = manager.update(result)

``update`` receives everything a user-space controller can observe on real
hardware (per-service latency + PMCs and socket power) and returns the
core/DVFS assignment for the next interval.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.server.machine import CoreAssignment
from repro.sim.environment import StepResult


class TaskManager(ABC):
    """Base class for all task managers (Twig, Hipster, Heracles, ...)."""

    #: Human-readable name used in experiment reports.
    name: str = "manager"

    @abstractmethod
    def initial_assignments(self) -> Dict[str, CoreAssignment]:
        """Assignments installed before the first interval."""

    @abstractmethod
    def update(self, result: StepResult) -> Dict[str, CoreAssignment]:
        """Observe the last interval and decide the next assignments."""
