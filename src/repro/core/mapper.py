"""Twig's mapper module (Sections III-B3 and IV).

Three responsibilities:

1. Turn each service's ``Allocation`` request into concrete core pins and a
   DVFS index; unallocated cores implicitly drop to the lowest DVFS state
   when :class:`repro.server.machine.Machine` applies the assignment.
2. Prioritise core order for cache locality: services are placed from
   opposite ends of the socket, preferring every-other core (the paper's
   example gives sv-1 cores 0, 2, 4 and sv-2 cores 10, 12, 14, 16).
3. Arbitrate conflicts: when requests exceed the socket, the overlapping
   cores are timeshared by the contending services and run at the highest
   DVFS state among their requests (the machine model enforces the
   max-DVFS rule for shared cores).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.actions import Allocation
from repro.errors import AllocationError
from repro.server.machine import CoreAssignment
from repro.server.spec import ServerSpec


class Mapper:
    """Places services onto one socket's cores."""

    def __init__(self, spec: ServerSpec, socket_index: int = 1):
        self.spec = spec
        self.socket_index = socket_index
        self.socket_cores = spec.socket_core_ids(socket_index)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def map(self, requests: Mapping[str, Allocation]) -> Dict[str, CoreAssignment]:
        """Resolve all requests into concrete core assignments."""
        if not requests:
            raise AllocationError("mapper received no requests")
        n = len(self.socket_cores)
        for name, request in requests.items():
            if request.num_cores > n:
                raise AllocationError(
                    f"service {name!r} requested {request.num_cores} cores, socket "
                    f"has {n}"
                )
            if request.freq_index >= len(self.spec.dvfs):
                raise AllocationError(
                    f"service {name!r} requested DVFS index {request.freq_index}, "
                    f"ladder has {len(self.spec.dvfs)}"
                )
        total = sum(r.num_cores for r in requests.values())
        if total <= n:
            local = self._place_disjoint(requests)
        else:
            local = self._place_with_overlap(requests)
        ways = self._arbitrate_ways(requests)
        return {
            name: CoreAssignment(
                cores=tuple(self.socket_cores[i] for i in sorted(ids)),
                freq_index=requests[name].freq_index,
                llc_ways=ways[name],
            )
            for name, ids in local.items()
        }

    def _arbitrate_ways(self, requests: Mapping[str, Allocation]) -> Dict[str, int]:
        """Scale conflicting CAT way requests to fit the socket's ways.

        Mirrors the core arbitration policy: when the sum of requested
        partitions exceeds the cache, every request is shrunk
        proportionally (floor), so the combined quota always fits.
        """
        available = self.spec.socket.llc_ways
        requested = {name: min(r.llc_ways, available) for name, r in requests.items()}
        total = sum(requested.values())
        if total <= available:
            return requested
        factor = available / total
        return {name: int(ways * factor) for name, ways in requested.items()}

    # ------------------------------------------------------------------ #
    # placement strategies (local core indices 0..n-1)
    # ------------------------------------------------------------------ #
    def _preference(self, side: int, n: int) -> List[int]:
        """Core pick order for a side: own-end evens first, then odds."""
        ascending = list(range(0, n, 2)) + list(range(1, n, 2))
        if side == 0:
            return ascending
        evens_desc = [i for i in range(n - 1, -1, -1) if i % 2 == 0]
        odds_desc = [i for i in range(n - 1, -1, -1) if i % 2 == 1]
        return evens_desc + odds_desc

    def _place_disjoint(
        self, requests: Mapping[str, Allocation]
    ) -> Dict[str, List[int]]:
        """Locality-aware placement when everything fits."""
        n = len(self.socket_cores)
        free = set(range(n))
        placement: Dict[str, List[int]] = {}
        for index, (name, request) in enumerate(requests.items()):
            order = self._preference(index % 2, n)
            picked: List[int] = []
            for core in order:
                if len(picked) == request.num_cores:
                    break
                if core in free:
                    picked.append(core)
                    free.discard(core)
            if len(picked) < request.num_cores:
                raise AllocationError(
                    f"internal error: could not place {request.num_cores} cores "
                    f"for {name!r}"
                )
            placement[name] = picked
        return placement

    def _place_with_overlap(
        self, requests: Mapping[str, Allocation]
    ) -> Dict[str, List[int]]:
        """Arbitrated placement when requests exceed the socket.

        Services are laid out as contiguous windows from alternating ends;
        windows that intersect are the timeshared cores (Section IV's
        arbitration example). For more than two services the windows tile
        the socket in proportion-preserving order, wrapping as needed.
        """
        n = len(self.socket_cores)
        names = list(requests)
        placement: Dict[str, List[int]] = {}
        if len(names) == 2:
            first, second = names
            a = requests[first].num_cores
            b = requests[second].num_cores
            placement[first] = list(range(0, a))
            placement[second] = list(range(n - b, n))
            return placement
        # General case: contiguous windows starting where the previous one
        # ended, wrapping modulo the socket size.
        offset = 0
        for name in names:
            count = requests[name].num_cores
            placement[name] = [(offset + i) % n for i in range(count)]
            offset = (offset + count) % n
        return placement

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def full_socket(self, services: Sequence[str], freq_index: int) -> Dict[str, CoreAssignment]:
        """Everyone pinned to the whole socket (the static baseline)."""
        cores = tuple(self.socket_cores)
        return {name: CoreAssignment(cores=cores, freq_index=freq_index) for name in services}
