"""Twig's reward function (Equation 1).

Per service k:

    r_k = QoS_rew + theta * Power_rew        if QoS <= QoS_target
    r_k = max(-QoS_rew^phi, cap)             if QoS >  QoS_target

where ``QoS_rew`` is the ratio of measured tail latency to the target
(<= 1 means the target was met and quantifies how quick the response was),
``Power_rew`` is the ratio of the maximum measured system power to the
service's estimated power (larger = cheaper), ``theta`` balances QoS
against power (paper: 0.5), ``phi`` shapes the violation penalty
(paper: 3) and ``cap`` bounds it (paper: -100).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RewardParams:
    """Equation 1 constants; defaults are the paper's empirical choices."""

    theta: float = 0.5
    phi: float = 3.0
    cap: float = -100.0

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise ConfigurationError(f"theta must be >= 0, got {self.theta}")
        if self.phi <= 0:
            raise ConfigurationError(f"phi must be positive, got {self.phi}")
        if self.cap >= 0:
            raise ConfigurationError(f"cap must be negative, got {self.cap}")


@dataclass(frozen=True)
class RewardBreakdown:
    """Equation 1, decomposed — what the ``reward`` trace event carries.

    ``power_rew`` is 0 on the violation branch (the penalty ignores power);
    ``total`` is always exactly what :func:`compute_reward` returns.
    """

    total: float
    qos_rew: float                 # measured p99 / target
    power_rew: float               # max power / estimated power (0 on violation)
    violation: bool                # penalty branch applied


def reward_components(
    measured_qos_ms: float,
    qos_target_ms: float,
    max_power_w: float,
    estimated_power_w: float,
    params: RewardParams = RewardParams(),
) -> RewardBreakdown:
    """Equation 1 for one service over one interval, with its terms."""
    if qos_target_ms <= 0:
        raise ConfigurationError(f"qos_target_ms must be positive, got {qos_target_ms}")
    if measured_qos_ms < 0:
        raise ConfigurationError(f"measured_qos_ms must be >= 0, got {measured_qos_ms}")
    if max_power_w <= 0 or estimated_power_w <= 0:
        raise ConfigurationError("powers must be positive")
    qos_rew = measured_qos_ms / qos_target_ms
    if qos_rew <= 1.0:
        power_rew = max_power_w / estimated_power_w
        return RewardBreakdown(
            total=qos_rew + params.theta * power_rew,
            qos_rew=qos_rew,
            power_rew=power_rew,
            violation=False,
        )
    return RewardBreakdown(
        total=max(-(qos_rew ** params.phi), params.cap),
        qos_rew=qos_rew,
        power_rew=0.0,
        violation=True,
    )


def compute_reward(
    measured_qos_ms: float,
    qos_target_ms: float,
    max_power_w: float,
    estimated_power_w: float,
    params: RewardParams = RewardParams(),
) -> float:
    """Equation 1 for one service over one interval."""
    return reward_components(
        measured_qos_ms, qos_target_ms, max_power_w, estimated_power_w, params
    ).total
