"""Legacy setup shim.

The evaluation environment has no network access and no `wheel` package, so
PEP 517 editable installs (which need to build a wheel) fail. This shim lets
`pip install -e . --no-build-isolation --no-use-pep517` (and plain
`python setup.py develop`) work offline. All metadata lives in pyproject.toml
and is mirrored here minimally.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
