"""End-to-end traced experiment: every emitted JSONL line must validate.

Marked ``trace_e2e`` so CI / ``make trace-e2e`` can run exactly this
check; it also runs in the default suite because it is tiny.
"""

import json

import pytest

from repro.experiments.runner import run_experiments
from repro.obs import RunManifest, summarize_events, validate_event


@pytest.mark.trace_e2e
def test_tiny_traced_experiment_is_fully_schema_valid(tmp_path):
    from repro.experiments.fig07_learning_curve import Fig07Config

    config = Fig07Config(
        total_steps=60, bucket=30, twig_epsilon_mid=20, hipster_learning_phase=20
    )
    runs = run_experiments(
        ["fig07"], configs={"fig07": config}, out_dir=tmp_path, trace=True
    )
    assert runs[0].ok

    trace_path = tmp_path / "fig07" / "trace.jsonl"
    events = []
    with trace_path.open() as handle:
        for line in handle:
            event = json.loads(line)      # every line is standalone JSON
            validate_event(event)         # ... and schema-conformant
            events.append(event)
    assert len(events) == runs[0].manifest.trace_events

    # The manifest on disk round-trips and carries the trace's aggregates.
    manifest = RunManifest.read(tmp_path / "fig07" / "manifest.json")
    assert manifest.status == "ok"
    assert manifest.summary["trace"] == summarize_events(events).to_dict()
    # fig07 runs Twig then Hipster through the same sink: two runs.
    assert manifest.summary["trace"]["event_counts"]["run_start"] == 2
    assert manifest.summary["trace"]["steps"] == 2 * config.total_steps
