"""Equivalence and resume tests for the vectorized rollout engine.

The vector engine's contract is *equivalence* against the retained
scalar path:

- a :class:`~repro.engine.vector_env.VectorEnvironment` stepped in
  lock-step produces, per environment, the trajectory the equivalent
  standalone :class:`ColocationEnvironment` produces at the same
  per-env seed — to the last ulp (vectorized sums may associate
  differently than scalar accumulation, nothing more), with the RNG
  streams consumed draw-for-draw identically;
- :meth:`FleetBDQAgent.act_batch` consumes the exploration RNG exactly
  like N consecutive scalar ``act`` calls;
- a checkpointed/resumed vector run replays bit-identically to an
  uninterrupted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Allocation
from repro.core.config import TwigConfig
from repro.core.mapper import Mapper
from repro.engine.fleet import FleetBDQAgent, FleetTwig
from repro.engine.rollout import run_fleet
from repro.engine.vector_env import (
    ENV_SEED_STRIDE,
    VectorEnvironment,
    make_sibling_environment,
)
from repro.errors import CheckpointError
from repro.experiments.fleet import FleetConfig, run as run_fleet_experiment
from repro.rl.agent import BDQAgent, BDQAgentConfig
from repro.rl.striped import StripedPrioritizedReplayBuffer
from repro.server.spec import ServerSpec
from repro.services.profiles import get_profile

SERVICES = ["masstree", "xapian", "moses"]
FRACTIONS = {"masstree": 0.4, "xapian": 0.5, "moses": 0.3}
SEED = 11

_INTERVAL_FIELDS = [
    "arrival_rate",
    "throughput_rps",
    "p99_ms",
    "mean_ms",
    "utilization",
    "capacity_rps",
    "backlog",
    "cores",
    "frequency_ghz",
    "inflation",
    "miss_inflation",
    "membw_gbps",
    "busy_core_seconds",
    "instructions",
    "qos_target_ms",
]


def _ulp_close(a: float, b: float) -> bool:
    """Equal up to vectorized-vs-scalar summation-order round-off."""
    return bool(np.isclose(a, b, rtol=1e-12, atol=0.0, equal_nan=True))


def _assignments(spec: ServerSpec, t: int):
    """Deterministic per-step allocation schedule exercising cores+DVFS."""
    mapper = Mapper(spec)
    top = len(spec.dvfs) - 1
    allocations = {
        name: Allocation(
            num_cores=2 + (t + 3 * i) % 4,
            freq_index=(t + i) % (top + 1),
        )
        for i, name in enumerate(SERVICES)
    }
    return mapper.map(allocations)


class TestVectorMatchesScalar:
    def test_lockstep_trajectories_bit_identical(self):
        num_envs, steps = 3, 25
        venv = VectorEnvironment.from_services(SERVICES, FRACTIONS, num_envs, SEED)
        oracles = [
            make_sibling_environment(SERVICES, FRACTIONS, SEED + e * ENV_SEED_STRIDE)
            for e in range(num_envs)
        ]
        for t in range(steps):
            assignment = _assignments(venv.spec, t)
            results = venv.step([assignment] * num_envs)
            for e, oracle in enumerate(oracles):
                expected = oracle.step(assignment)
                got = results[e]
                assert got.time == expected.time
                assert _ulp_close(got.socket_power_w, expected.socket_power_w)
                assert _ulp_close(got.true_power_w, expected.true_power_w)
                assert _ulp_close(got.membw_utilization, expected.membw_utilization)
                assert _ulp_close(got.energy_j, expected.energy_j)
                for name in SERVICES:
                    interval = got.observations[name].interval
                    ref = expected.observations[name].interval
                    for field in _INTERVAL_FIELDS:
                        assert _ulp_close(
                            getattr(interval, field), getattr(ref, field)
                        ), (name, field, t)
                    pmcs, ref_pmcs = got.observations[name].pmcs, expected.observations[name].pmcs
                    assert set(pmcs) == set(ref_pmcs)
                    for counter in pmcs:
                        assert _ulp_close(pmcs[counter], ref_pmcs[counter]), (name, counter, t)
        # The RNG streams must end in the same state too — equality of the
        # outputs above could in principle survive a draw-order swap, the
        # bit generator state cannot.
        for e, oracle in enumerate(oracles):
            assert (
                venv.envs[e]._rng.bit_generator.state == oracle._rng.bit_generator.state
            )

    def test_env_zero_matches_standard_recipe(self):
        # Environment 0 of a batch is seed-identical to a scalar run at
        # the batch seed, so single-experiment results are reproducible
        # inside a fleet.
        venv = VectorEnvironment.from_services(SERVICES, FRACTIONS, 2, SEED)
        solo = make_sibling_environment(SERVICES, FRACTIONS, SEED)
        assignment = _assignments(venv.spec, 0)
        results = venv.step([assignment, assignment])
        expected = solo.step(assignment)
        assert _ulp_close(results[0].socket_power_w, expected.socket_power_w)
        assert not _ulp_close(results[1].socket_power_w, expected.socket_power_w)


class TestBatchedAct:
    def _agent_config(self) -> BDQAgentConfig:
        return BDQAgentConfig(
            state_dim=22,
            branch_sizes=[[18, 9], [18, 9]],
            batch_size=16,
            min_buffer_size=16,
            buffer_capacity=256,
            shared_hidden=(32, 16),
            branch_hidden=8,
        )

    def test_act_batch_matches_sequential_act(self):
        config = self._agent_config()
        scalar = BDQAgent(config, np.random.default_rng(5))
        fleet = FleetBDQAgent(config, np.random.default_rng(5), num_envs=4)
        states = np.random.default_rng(9).normal(size=(4, config.state_dim))
        # Mid-schedule epsilon so the exploration branch actually fires.
        scalar.step_count = fleet.step_count = config.epsilon_mid_steps // 2
        batched = fleet.act_batch(states)
        sequential = [scalar.act(states[i]) for i in range(4)]
        assert batched == sequential
        # Identical draw counts: both streams end in the same state.
        assert (
            fleet._rng.bit_generator.state == scalar._rng.bit_generator.state
        )

    def test_act_batch_greedy_matches_single(self):
        config = self._agent_config()
        fleet = FleetBDQAgent(config, np.random.default_rng(5), num_envs=3)
        states = np.random.default_rng(10).normal(size=(3, config.state_dim))
        batched = fleet.act_batch(states, greedy=True)
        for i in range(3):
            assert batched[i] == fleet.act(states[i], greedy=True)


class TestStripedReplay:
    def _transition(self, rng):
        return {
            "state": rng.normal(size=4),
            "actions": rng.integers(0, 3, size=2).astype(float),
            "rewards": rng.normal(size=1),
            "next_state": rng.normal(size=4),
            "done": np.asarray(0.0),
        }

    def test_per_stripe_eviction(self):
        rng = np.random.default_rng(3)
        buf = StripedPrioritizedReplayBuffer(2, 4, rng)
        for _ in range(6):
            buf.add(0, self._transition(rng))
        buf.add(1, self._transition(rng))
        # Stripe 0 wrapped its ring; stripe 1 kept its single transition.
        assert buf.stripe_len(0) == 4
        assert buf.stripe_len(1) == 1
        assert len(buf) == 5
        batch = buf.sample(32, beta=0.5)
        assert batch["state"].shape == (32, 4)
        assert batch["weights"].max() == 1.0
        # Global slots map back to the owning stripe.
        assert set(batch["indices"] // 4) <= {0, 1}

    def test_state_dict_round_trip(self):
        rng = np.random.default_rng(4)
        buf = StripedPrioritizedReplayBuffer(3, 8, rng, alpha=0.7)
        for e in (0, 1, 0, 2, 0, 1):
            buf.add(e, self._transition(rng))
        buf.update_priorities(np.array([0, 8, 16]), np.array([0.5, 2.0, 0.1]))
        clone = StripedPrioritizedReplayBuffer(3, 8, np.random.default_rng(4), alpha=0.7)
        clone.load_state_dict(buf.state_dict())
        assert len(clone) == len(buf)
        assert np.array_equal(clone._sizes, buf._sizes)
        assert np.array_equal(clone._cursors, buf._cursors)
        assert clone._tree.total == buf._tree.total
        for key, store in buf._storage.items():
            assert np.array_equal(clone._storage[key], store)

    def test_geometry_mismatch_rejected(self):
        rng = np.random.default_rng(5)
        buf = StripedPrioritizedReplayBuffer(2, 8, rng)
        buf.add(0, self._transition(rng))
        other = StripedPrioritizedReplayBuffer(4, 8, rng)
        with pytest.raises(CheckpointError):
            other.load_state_dict(buf.state_dict())


def _build_fleet(num_envs: int, seed: int = 7):
    services = ["masstree", "xapian"]
    fractions = {"masstree": 0.4, "xapian": 0.5}
    config = TwigConfig.fast(epsilon_mid_steps=15, epsilon_final_steps=30)
    venv = VectorEnvironment.from_services(services, fractions, num_envs, seed)
    manager = FleetTwig(
        [get_profile(s) for s in services],
        config,
        np.random.default_rng(seed + 1),
        num_envs=num_envs,
    )
    return manager, venv


class TestVectorResume:
    def test_checkpoint_resume_bit_identical(self, tmp_path):
        num_envs, steps = 3, 20
        plain_manager, plain_venv = _build_fleet(num_envs)
        plain = run_fleet(plain_manager, plain_venv, steps)

        first_manager, first_venv = _build_fleet(num_envs)
        run_fleet(
            first_manager, first_venv, steps,
            checkpoint_every=7, checkpoint_dir=tmp_path,
        )
        resumed_manager, resumed_venv = _build_fleet(num_envs)
        resumed = run_fleet(resumed_manager, resumed_venv, steps, resume_from=tmp_path)

        for e in range(num_envs):
            assert resumed[e].power_w == plain[e].power_w
            assert resumed[e].true_power_w == plain[e].true_power_w
            for name in ("masstree", "xapian"):
                assert resumed[e].services[name].p99_ms == plain[e].services[name].p99_ms
                assert resumed[e].services[name].cores == plain[e].services[name].cores

    def test_resume_rejects_wrong_num_envs(self, tmp_path):
        manager, venv = _build_fleet(2)
        run_fleet(manager, venv, 10, checkpoint_every=5, checkpoint_dir=tmp_path)
        other_manager, other_venv = _build_fleet(3)
        with pytest.raises(CheckpointError):
            run_fleet(other_manager, other_venv, 10, resume_from=tmp_path)


class TestFleetSmoke:
    def test_tiny_four_env_vector_rollout(self):
        config = FleetConfig(
            services=("masstree", "xapian"),
            load_fractions=(0.4, 0.5),
            num_envs=4,
            steps=30,
            engine="vector",
            epsilon_mid_steps=10,
            epsilon_final_steps=20,
            window=10,
        )
        result = run_fleet_experiment(config)
        assert result.engine == "vector"
        assert result.num_envs == 4
        assert len(result.qos_guarantee) == 4
        assert len(result.mean_power_w) == 4
        for e in range(4):
            assert np.isfinite(result.mean_power_w[e]) and result.mean_power_w[e] > 0
            for name in ("masstree", "xapian"):
                assert 0.0 <= result.qos_guarantee[e][name] <= 100.0
            trace = result.traces[e]
            assert len(trace.power_w) == 30
            assert len(trace.services["masstree"].p99_ms) == 30
        assert result.format_table()
