"""Unit tests for the PMC telemetry synthesiser."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pmc.counters import COUNTER_NAMES
from repro.services.interference import SocketContention
from repro.services.profiles import get_profile
from repro.services.service import LCService
from repro.sim.telemetry import TelemetrySynthesizer


def _result(name="masstree", arrival=1000.0, cores=12, freq=2.0, contention=None):
    service = LCService(
        get_profile(name), 2.0, np.random.default_rng(0), latency_noise_std=0.0
    )
    kwargs = {} if contention is None else {"contention": contention}
    return service.step(arrival, cores=cores, frequency_ghz=freq, **kwargs)


def test_all_counters_present(rng):
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    readings = synth.synthesize(get_profile("masstree"), _result())
    assert set(readings) == set(COUNTER_NAMES)
    assert all(v >= 0 for v in readings.values())


def test_instructions_scale_with_throughput(rng):
    """Request instructions scale with throughput; spin instructions from
    allocated-but-idle cores shrink as the cores get busier, so the total
    grows sublinearly but strictly."""
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    low = synth.synthesize(get_profile("masstree"), _result(arrival=500.0))
    high = synth.synthesize(get_profile("masstree"), _result(arrival=1500.0))
    assert high["INSTRUCTION_RETIRED"] > low["INSTRUCTION_RETIRED"]
    # LLC misses carry no spin component, so they scale exactly 3x.
    assert high["LLC_MISSES"] == pytest.approx(3.0 * low["LLC_MISSES"], rel=0.01)


def test_cycles_reflect_frequency(rng):
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    profile = get_profile("img-dnn")  # compute bound: busy time ~ 1/f
    slow = synth.synthesize(profile, _result("img-dnn", 500.0, 18, 1.2))
    fast = synth.synthesize(profile, _result("img-dnn", 500.0, 18, 2.0))
    # cycles = busy_seconds * f: busy rises ~1/f while f rises, roughly flat,
    # but reference cycles (fixed clock) must rise with busy time at low f.
    assert slow["UNHALTED_REFERENCE_CYCLES"] > fast["UNHALTED_REFERENCE_CYCLES"]


def test_miss_inflation_shows_in_llc_counter(rng):
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    profile = get_profile("masstree")
    contended = SocketContention(
        inflation=1.2, miss_inflation=1.5, membw_utilization=0.9, llc_overcommit=1.3
    )
    clean = synth.synthesize(profile, _result())
    dirty = synth.synthesize(profile, _result(contention=contended))
    assert dirty["LLC_MISSES"] > 1.3 * clean["LLC_MISSES"] * (
        dirty["INSTRUCTION_RETIRED"] / clean["INSTRUCTION_RETIRED"]
    )


def test_branch_counters_follow_profile_mix(rng):
    """Branch counters combine the request mix and the spin-loop mix."""
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    profile = get_profile("xapian")
    result = _result("xapian", 500.0)
    readings = synth.synthesize(profile, result)
    request_instr = result.instructions
    spin_instr = readings["INSTRUCTION_RETIRED"] - request_instr
    expected_branches = (
        request_instr * profile.branch_per_instr
        + spin_instr * TelemetrySynthesizer.SPIN_BRANCH_FRACTION
    )
    assert readings["BRANCH_INSTRUCTIONS_RETIRED"] == pytest.approx(
        expected_branches, rel=1e-6
    )
    # Spin branches barely miss, so the aggregate miss rate is *below* the
    # request mix's rate.
    rate = readings["MISPREDICTED_BRANCH_RETIRED"] / readings["BRANCH_INSTRUCTIONS_RETIRED"]
    assert rate < profile.branch_miss_rate


def test_noise_perturbs_readings(rng):
    synth = TelemetrySynthesizer(rng, noise_std=0.05)
    result = _result()
    a = synth.synthesize(get_profile("masstree"), result)
    b = synth.synthesize(get_profile("masstree"), result)
    assert a["INSTRUCTION_RETIRED"] != b["INSTRUCTION_RETIRED"]


def test_ipc_helper(rng):
    synth = TelemetrySynthesizer(rng, noise_std=0.0)
    readings = synth.synthesize(get_profile("masstree"), _result())
    ipc = TelemetrySynthesizer.ipc(readings)
    assert 0.0 < ipc < 5.0
    assert TelemetrySynthesizer.ipc({"UNHALTED_CORE_CYCLES": 0.0}) == 0.0


def test_noise_validation(rng):
    with pytest.raises(ConfigurationError):
        TelemetrySynthesizer(rng, noise_std=-0.1)
