"""Traffic model: declarative specs, reproducibility, primitives."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.cluster.traffic import (
    TRAFFIC_PRESETS,
    FlashCrowd,
    RegionalShift,
    ScheduledLoad,
    ServiceTraffic,
    TrafficModel,
    TrafficSpec,
    make_traffic_spec,
)
from repro.errors import ConfigurationError
from repro.services.profiles import get_profile

SERVICES = ["masstree", "xapian"]


def _model(spec, num_nodes=6, regions=("r0", "r1"), seed=11):
    topology = ClusterTopology(num_nodes, regions)
    return TrafficModel(spec, topology, np.random.default_rng(seed))


class TestSpecValidation:
    def test_negative_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceTraffic("masstree", diurnal_amplitude=-0.1)

    def test_amplitude_exceeding_base_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceTraffic("masstree", base_fraction=0.3, diurnal_amplitude=0.4)

    def test_flash_crowd_unknown_service_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(
                services=(ServiceTraffic("masstree"),),
                flash_crowds=(FlashCrowd("xapian", start=0, duration=10, magnitude=2.0),),
            )

    def test_shift_same_region_rejected(self):
        with pytest.raises(ConfigurationError):
            RegionalShift(start=0, duration=10, source="r0", target="r0", fraction=0.5)

    def test_shift_unknown_region_rejected_by_model(self):
        spec = TrafficSpec(
            services=(ServiceTraffic("masstree"),),
            regional_shifts=(
                RegionalShift(start=0, duration=10, source="nowhere", target="r0",
                              fraction=0.5),
            ),
        )
        with pytest.raises(ConfigurationError):
            _model(spec)

    def test_duplicate_service_curves_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(
                services=(ServiceTraffic("masstree"), ServiceTraffic("masstree"))
            )


class TestDemand:
    def test_same_seed_same_demand_sequence(self):
        spec = make_traffic_spec("diurnal", SERVICES)
        a, b = _model(spec, seed=5), _model(spec, seed=5)
        for t in range(50):
            np.testing.assert_array_equal(a.demand(t), b.demand(t))

    def test_demand_shape_and_scale(self):
        spec = make_traffic_spec("steady", SERVICES)
        model = _model(spec, num_nodes=6)
        demand = model.demand(0)
        assert demand.shape == (2, len(SERVICES))
        # steady preset: 0.5 of fleet max, split over regions by node count
        for i, name in enumerate(SERVICES):
            expected = 0.5 * get_profile(name).max_load_rps * 6
            assert demand[:, i].sum() == pytest.approx(expected)

    def test_diurnal_curve_spans_expected_range(self):
        spec = TrafficSpec(
            services=(ServiceTraffic("masstree", base_fraction=0.5,
                                     diurnal_amplitude=0.3, period=100),)
        )
        model = _model(spec)
        fractions = [model.fractions(t)[0] for t in range(100)]
        assert min(fractions) == pytest.approx(0.2, abs=1e-6)
        assert max(fractions) == pytest.approx(0.8, abs=1e-6)

    def test_flash_crowd_multiplies_inside_window_only(self):
        base = TrafficSpec(services=(ServiceTraffic("masstree", base_fraction=0.4),
                                     ServiceTraffic("xapian", base_fraction=0.4)))
        crowd = TrafficSpec(
            services=base.services,
            flash_crowds=(FlashCrowd("masstree", start=10, duration=5, magnitude=3.0),),
        )
        plain, spiked = _model(base), _model(crowd)
        for t in (9, 15):
            np.testing.assert_allclose(spiked.demand(t), plain.demand(t))
        inside = spiked.demand(12)
        reference = plain.demand(12)
        np.testing.assert_allclose(inside[:, 0], 3.0 * reference[:, 0])
        np.testing.assert_allclose(inside[:, 1], reference[:, 1])

    def test_regional_flash_crowd_hits_one_region(self):
        spec = TrafficSpec(
            services=(ServiceTraffic("masstree", base_fraction=0.4),),
            flash_crowds=(FlashCrowd("masstree", start=0, duration=5,
                                     magnitude=2.0, region="r1"),),
        )
        plain = _model(TrafficSpec(services=spec.services))
        spiked = _model(spec)
        np.testing.assert_allclose(spiked.demand(0)[0], plain.demand(0)[0])
        np.testing.assert_allclose(spiked.demand(0)[1], 2.0 * plain.demand(0)[1])

    def test_regional_shift_conserves_total_and_moves_share(self):
        spec = TrafficSpec(
            services=(ServiceTraffic("masstree", base_fraction=0.5),),
            regional_shifts=(RegionalShift(start=10, duration=10, source="r0",
                                           target="r1", fraction=0.6),),
        )
        model = _model(spec, num_nodes=8)
        before, during = model.demand(5), model.demand(15)
        assert during.sum() == pytest.approx(before.sum())
        assert during[0, 0] == pytest.approx(0.4 * before[0, 0])
        assert during[1, 0] > before[1, 0]

    def test_region_weights_sum_to_one(self):
        spec = make_traffic_spec("regional_shift", SERVICES)
        model = _model(spec, num_nodes=7)
        for t in range(0, 400, 25):
            assert model.region_weights(t).sum() == pytest.approx(1.0)

    def test_state_roundtrip_resumes_noise_stream(self):
        spec = make_traffic_spec("diurnal", SERVICES)  # noisy preset
        model = _model(spec, seed=3)
        for t in range(10):
            model.demand(t)
        saved = model.state_dict()
        ahead = [model.demand(t) for t in range(10, 20)]
        fresh = _model(spec, seed=99)  # wrong seed on purpose
        fresh.load_state_dict(saved)
        resumed = [fresh.demand(t) for t in range(10, 20)]
        for a, b in zip(ahead, resumed):
            np.testing.assert_array_equal(a, b)


class TestResumeAcrossFlashCrowd:
    """Regression: resume landing inside a flash-crowd window must not drift.

    The flash_crowd preset spikes the first service over t=100..160; a
    checkpoint taken mid-flash used to lose the spec identity, so a
    resume with a subtly different spec silently produced different
    demand. The fingerprint in the checkpoint pins both.
    """

    def test_mid_flash_resume_is_bit_identical(self):
        spec = make_traffic_spec("flash_crowd", SERVICES)
        model = _model(spec, seed=3)
        for t in range(110):                      # stop inside 100..160
            model.demand(t)
        saved = model.state_dict()
        ahead = [model.demand(t) for t in range(110, 170)]  # spans the edge
        fresh = _model(spec, seed=99)
        fresh.load_state_dict(saved)
        resumed = [fresh.demand(t) for t in range(110, 170)]
        for a, b in zip(ahead, resumed):
            np.testing.assert_array_equal(a, b)

    def test_spec_mismatch_rejected(self):
        from repro.errors import CheckpointError

        model = _model(make_traffic_spec("flash_crowd", SERVICES), seed=3)
        for t in range(110):
            model.demand(t)
        saved = model.state_dict()
        other = _model(make_traffic_spec("diurnal", SERVICES), seed=3)
        with pytest.raises(CheckpointError):
            other.load_state_dict(saved)

    def test_topology_mismatch_rejected(self):
        from repro.errors import CheckpointError

        spec = make_traffic_spec("flash_crowd", SERVICES)
        saved = _model(spec, num_nodes=6).state_dict()
        other = _model(spec, num_nodes=8)
        with pytest.raises(CheckpointError):
            other.load_state_dict(saved)

    def test_legacy_state_without_fingerprint_still_loads(self):
        spec = make_traffic_spec("diurnal", SERVICES)
        model = _model(spec, seed=3)
        for t in range(10):
            model.demand(t)
        saved = model.state_dict()
        saved.pop("spec")                         # pre-PR-8 checkpoint shape
        ahead = [model.demand(t) for t in range(10, 20)]
        fresh = _model(spec, seed=99)
        fresh.load_state_dict(saved)
        resumed = [fresh.demand(t) for t in range(10, 20)]
        for a, b in zip(ahead, resumed):
            np.testing.assert_array_equal(a, b)


class TestPresets:
    def test_all_presets_build_valid_specs(self):
        for name in TRAFFIC_PRESETS:
            spec = make_traffic_spec(name, SERVICES)
            assert spec.service_names() == tuple(SERVICES)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_traffic_spec("hurricane", SERVICES)


class TestScheduledLoad:
    def test_rate_returns_set_value_exactly(self):
        gen = ScheduledLoad(1000.0)
        assert gen.rate(0) == 0.0
        gen.set_rate(123.456789)
        assert gen.rate(5) == 123.456789
        assert gen.fraction(5) == pytest.approx(0.123456789)

    def test_consumes_no_rng_draws(self):
        gen = ScheduledLoad(1000.0)
        state_before = gen._rng.bit_generator.state
        gen.set_rate(500.0)
        gen.rate(0)
        assert gen._rng.bit_generator.state == state_before

    def test_rejects_bad_rates(self):
        gen = ScheduledLoad(1000.0)
        with pytest.raises(ConfigurationError):
            gen.set_rate(-1.0)
        with pytest.raises(ConfigurationError):
            gen.set_rate(float("nan"))
