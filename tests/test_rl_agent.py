"""Unit and behavioural tests for the BDQ deep Q-learning agent."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition


def _config(**overrides):
    defaults = dict(
        state_dim=4,
        branch_sizes=[[4, 3]],
        min_buffer_size=16,
        buffer_capacity=500,
        batch_size=16,
        shared_hidden=(32, 16),
        branch_hidden=8,
        dropout=0.0,
        epsilon_mid_steps=50,
        epsilon_final_steps=100,
    )
    defaults.update(overrides)
    return BDQAgentConfig(**defaults)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        _config(epsilon_mid_steps=100, epsilon_final_steps=100)
    with pytest.raises(ConfigurationError):
        _config(discount=0.0)
    with pytest.raises(ConfigurationError):
        _config(buffer_capacity=4, batch_size=16)


def test_act_respects_branch_ranges(rng):
    agent = BDQAgent(_config(), rng)
    for _ in range(50):
        actions = agent.act(rng.random(4))
        assert len(actions) == 1
        cores, dvfs = actions[0]
        assert 0 <= cores < 4
        assert 0 <= dvfs < 3


def test_act_rejects_wrong_state_dim(rng):
    agent = BDQAgent(_config(), rng)
    with pytest.raises(ShapeError):
        agent.act(np.ones(7))


def test_epsilon_anneals_and_freezes(rng):
    agent = BDQAgent(_config(), rng)
    assert agent.epsilon() == 1.0
    agent.step_count = 100
    assert agent.epsilon() == pytest.approx(0.01)
    agent.exploring_frozen = True
    assert agent.epsilon() == 0.0


def test_observe_rejects_wrong_reward_count(rng):
    agent = BDQAgent(_config(), rng)
    with pytest.raises(ShapeError):
        agent.observe(
            Transition(np.ones(4), [[0, 0]], np.array([1.0, 2.0]), np.ones(4))
        )


def test_training_starts_after_min_buffer(rng):
    agent = BDQAgent(_config(min_buffer_size=10), rng)
    state = rng.random(4)
    for step in range(9):
        loss = agent.observe(Transition(state, [[0, 0]], np.array([0.0]), state))
        assert loss is None
    loss = agent.observe(Transition(state, [[0, 0]], np.array([0.0]), state))
    assert loss is not None and np.isfinite(loss)


def test_target_sync_interval(rng):
    agent = BDQAgent(_config(target_update_every=5, min_buffer_size=1000), rng)
    state = rng.random(4)
    agent.online.parameters()[0].value += 1.0  # diverge from target
    for _ in range(4):
        agent.observe(Transition(state, [[0, 0]], np.array([0.0]), state))
    assert not np.allclose(
        agent.online.parameters()[0].value, agent.target.parameters()[0].value
    )
    agent.observe(Transition(state, [[0, 0]], np.array([0.0]), state))
    assert np.allclose(
        agent.online.parameters()[0].value, agent.target.parameters()[0].value
    )


def test_agent_learns_contextual_bandit(rng):
    """Reward depends on state: the agent must learn a state-conditional
    greedy policy, exercising the full pipeline (PER, double-Q, BDQ)."""
    agent = BDQAgent(
        _config(epsilon_mid_steps=300, epsilon_final_steps=500, min_buffer_size=32),
        rng,
    )
    def reward(state, actions):
        cores, dvfs = actions[0]
        want_cores = 3 if state[0] > 0.5 else 0
        return float(cores == want_cores) + 0.5 * float(dvfs == 1)

    state = rng.random(4)
    for _ in range(800):
        actions = agent.act(state)
        next_state = rng.random(4)
        agent.observe(
            Transition(state, actions, np.array([reward(state, actions)]), next_state)
        )
        state = next_state

    agent.exploring_frozen = True
    high = np.array([0.9, 0.5, 0.5, 0.5])
    low = np.array([0.1, 0.5, 0.5, 0.5])
    assert agent.act(high)[0][0] == 3
    assert agent.act(low)[0][0] == 0
    assert agent.act(high)[0][1] == 1


def test_multi_agent_rewards_are_per_agent(rng):
    config = _config(branch_sizes=[[3, 2], [3, 2]], epsilon_mid_steps=200,
                     epsilon_final_steps=400, min_buffer_size=32)
    agent = BDQAgent(config, rng)
    state = rng.random(4)
    for _ in range(600):
        actions = agent.act(state)
        rewards = np.array(
            [float(actions[0][0] == 2), float(actions[1][0] == 0)]
        )
        next_state = rng.random(4)
        agent.observe(Transition(state, actions, rewards, next_state))
        state = next_state
    agent.exploring_frozen = True
    actions = agent.act(state)
    assert actions[0][0] == 2
    assert actions[1][0] == 0


def test_transfer_reinitialises_heads_and_targets(rng):
    agent = BDQAgent(_config(), rng)
    out_before = agent.online.adv_heads[0][0].layers[-1].weight.value.copy()
    trunk_before = agent.online.trunk.parameters()[0].value.copy()
    agent.transfer(np.random.default_rng(11))
    assert not np.array_equal(
        agent.online.adv_heads[0][0].layers[-1].weight.value, out_before
    )
    assert np.array_equal(agent.online.trunk.parameters()[0].value, trunk_before)
    # target resynced to the online network
    assert np.allclose(
        agent.target.adv_heads[0][0].layers[-1].weight.value,
        agent.online.adv_heads[0][0].layers[-1].weight.value,
    )


def test_save_load_roundtrip(tmp_path, rng):
    agent = BDQAgent(_config(), rng)
    other = BDQAgent(_config(), np.random.default_rng(77))
    path = tmp_path / "agent.npz"
    agent.save(path)
    other.load(path)
    state = rng.random(4)
    assert other.online.greedy_actions(state) == agent.online.greedy_actions(state)


def test_uniform_replay_mode(rng):
    agent = BDQAgent(_config(use_prioritized_replay=False), rng)
    state = rng.random(4)
    for _ in range(40):
        agent.observe(Transition(state, [[0, 0]], np.array([1.0]), state))
    assert agent.last_loss is not None
