"""Unit tests for the system monitor (eta smoothing + normalisation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.pmc.monitor import SystemMonitor


def _monitor(eta=5):
    return SystemMonitor(
        max_values={"A": 100.0, "B": 200.0},
        counters=("A", "B"),
        eta=eta,
    )


def test_single_observation_normalised():
    monitor = _monitor()
    state = monitor.observe("svc", {"A": 50.0, "B": 100.0})
    assert state == pytest.approx([0.5, 0.5])


def test_values_clipped_to_unit_interval():
    monitor = _monitor()
    state = monitor.observe("svc", {"A": 1e9, "B": -5.0})
    assert state[0] == 1.0
    assert state[1] == 0.0


def test_eta_smoothing_weights_recent_more():
    monitor = _monitor(eta=2)
    monitor.observe("svc", {"A": 0.0, "B": 0.0})
    state = monitor.observe("svc", {"A": 90.0, "B": 0.0})
    # weights 1:2 -> (0*1 + 0.9*2)/3 = 0.6
    assert state[0] == pytest.approx(0.6)


def test_history_bounded_by_eta():
    monitor = _monitor(eta=3)
    for value in (10.0, 20.0, 30.0, 40.0):
        monitor.observe("svc", {"A": value, "B": 0.0})
    # only 20, 30, 40 remain with weights 1,2,3
    expected = (0.2 * 1 + 0.3 * 2 + 0.4 * 3) / 6
    assert monitor.state("svc")[0] == pytest.approx(expected)


def test_per_service_isolation():
    monitor = _monitor()
    monitor.observe("a", {"A": 100.0, "B": 0.0})
    monitor.observe("b", {"A": 0.0, "B": 200.0})
    assert monitor.state("a")[0] == pytest.approx(1.0)
    assert monitor.state("b")[0] == pytest.approx(0.0)


def test_reset_single_service():
    monitor = _monitor()
    monitor.observe("a", {"A": 100.0, "B": 0.0})
    monitor.observe("b", {"A": 100.0, "B": 0.0})
    monitor.reset("a")
    assert np.all(monitor.state("a") == 0.0)
    assert monitor.state("b")[0] == pytest.approx(1.0)


def test_state_before_any_observation_is_zero():
    monitor = _monitor()
    assert np.all(monitor.state("ghost") == 0.0)


def test_missing_counter_rejected():
    monitor = _monitor()
    with pytest.raises(ShapeError):
        monitor.observe("svc", {"A": 1.0})


def test_validation():
    with pytest.raises(ConfigurationError):
        _monitor(eta=0)
    with pytest.raises(ConfigurationError):
        SystemMonitor(max_values={"A": 0.0}, counters=("A",))
    with pytest.raises(ConfigurationError):
        SystemMonitor(max_values={}, counters=("A",))


def test_paper_default_eta_is_five(spec):
    from repro.pmc.counters import CounterCatalogue

    monitor = SystemMonitor(CounterCatalogue(spec).max_values())
    assert monitor.eta == 5
    assert monitor.state_dim == 11
