"""ClusterEnvironment: scalar equivalence, events, checkpoints, experiment."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.balancer import NodeLoads, make_balancer
from repro.cluster.environment import (
    BALANCER_SEED_OFFSET,
    TRAFFIC_SEED_OFFSET,
    ClusterEnvironment,
    make_cluster_node,
)
from repro.cluster.topology import ClusterTopology
from repro.cluster.traffic import TrafficModel, make_traffic_spec
from repro.core.actions import Allocation
from repro.core.config import TwigConfig
from repro.core.mapper import Mapper
from repro.engine.fleet import FleetTwig
from repro.engine.rollout import run_fleet
from repro.errors import ConfigurationError
from repro.experiments.cluster import ClusterConfig, run as run_cluster
from repro.obs.sink import MemorySink
from repro.services.profiles import get_profile

SERVICES = ["masstree", "xapian"]


def _ulp_close(a: float, b: float) -> bool:
    """Equal up to vectorized-vs-scalar summation-order round-off (the
    same tolerance the PR-6 engine oracle uses)."""
    return bool(np.isclose(a, b, rtol=1e-12, atol=0.0, equal_nan=True))


def _static_assignments(venv, cores=6):
    mapper = Mapper(venv.spec, socket_index=venv.config.socket_index)
    top = len(venv.spec.dvfs) - 1
    allocation = {
        name: Allocation(num_cores=cores, freq_index=top) for name in venv.names
    }
    return [mapper.map(allocation) for _ in range(venv.num_envs)]


def _build_cluster(num_nodes, seed=7, traffic="diurnal", balancer="least_loaded"):
    venv = ClusterEnvironment.from_services(
        SERVICES, num_nodes=num_nodes, seed=seed, traffic=traffic, balancer=balancer
    )
    manager = FleetTwig(
        [get_profile(s) for s in SERVICES],
        TwigConfig.fast(epsilon_mid_steps=10, epsilon_final_steps=20),
        np.random.default_rng(seed + 1),
        num_envs=num_nodes,
    )
    manager.index_tag = "node"
    return manager, venv


class TestScalarEquivalence:
    @pytest.mark.parametrize("balancer", ["round_robin", "power_of_two"])
    def test_one_node_cluster_matches_hand_stepped_scalar(self, balancer):
        """A 1-node cluster is bit-identical to a scalar environment fed
        the same balancer rates via set_rate (the oracle for the whole
        traffic -> balancer -> vector-step path)."""
        seed, steps = 13, 20
        venv = ClusterEnvironment.from_services(
            SERVICES, num_nodes=1, seed=seed, traffic="diurnal", balancer=balancer
        )
        assignments = _static_assignments(venv)

        env = make_cluster_node(SERVICES, seed)
        topology = ClusterTopology(1, ("r0",))
        model = TrafficModel(
            make_traffic_spec("diurnal", SERVICES),
            topology,
            np.random.default_rng(seed + TRAFFIC_SEED_OFFSET),
        )
        policy = make_balancer(balancer, topology, seed=seed + BALANCER_SEED_OFFSET)

        loads = None
        for _ in range(steps):
            vec = venv.step(assignments)[0]
            rates = policy.assign(env.time, model.demand(env.time), loads)
            for i, name in enumerate(SERVICES):
                env.load_generators[name].set_rate(rates[0, i])
            scalar = env.step(assignments[0])
            obs = scalar.observations
            loads = NodeLoads(
                arrival_rps=np.array(
                    [[obs[n].interval.arrival_rate for n in SERVICES]]
                ),
                utilization=np.array([[obs[n].interval.utilization for n in SERVICES]]),
                backlog=np.array([[obs[n].interval.backlog for n in SERVICES]]),
            )
            assert _ulp_close(vec.socket_power_w, scalar.socket_power_w)
            assert _ulp_close(vec.energy_j, scalar.energy_j)
            for name in SERVICES:
                assert _ulp_close(
                    vec.observations[name].p99_ms, scalar.observations[name].p99_ms
                )
                # the balancer rate is installed verbatim on both sides
                assert (
                    vec.observations[name].interval.arrival_rate
                    == scalar.observations[name].interval.arrival_rate
                )


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = ClusterEnvironment.from_services(SERVICES, 6, seed=3,
                                             balancer="power_of_two")
        b = ClusterEnvironment.from_services(SERVICES, 6, seed=3,
                                             balancer="power_of_two")
        assignments = _static_assignments(a)
        for _ in range(10):
            ra, rb = a.step(assignments), b.step(assignments)
            for x, y in zip(ra, rb):
                assert x.socket_power_w == y.socket_power_w
                for name in SERVICES:
                    assert x.observations[name].p99_ms == y.observations[name].p99_ms

    def test_different_seed_different_trajectory(self):
        a = ClusterEnvironment.from_services(SERVICES, 4, seed=3)
        b = ClusterEnvironment.from_services(SERVICES, 4, seed=4)
        assignments = _static_assignments(a)
        ra, rb = a.step(assignments), b.step(assignments)
        assert any(x.socket_power_w != y.socket_power_w for x, y in zip(ra, rb))


class TestEvents:
    def test_events_node_tagged_and_schema_valid(self):
        venv = ClusterEnvironment.from_services(SERVICES, 3, seed=5)
        sink = MemorySink(validate=True)
        for env in venv.envs:
            env.trace = sink
        assignments = _static_assignments(venv, cores=2)  # force violations
        for _ in range(4):
            venv.step(assignments)
        intervals = sink.of_type("interval")
        assert len(intervals) == 3 * 4
        assert sorted({e["node"] for e in intervals}) == [0, 1, 2]
        assert all("env" not in e for e in intervals)
        violations = sink.of_type("qos_violation")
        assert violations and all("node" in e for e in violations)

    def test_cluster_interval_aggregates(self):
        venv = ClusterEnvironment.from_services(SERVICES, 3, seed=5)
        sink = MemorySink(validate=True)
        for env in venv.envs:
            env.trace = sink
        assignments = _static_assignments(venv)
        results = venv.step(assignments)
        (event,) = sink.of_type("cluster_interval")
        assert event["nodes"] == 3
        assert event["power_w"] == pytest.approx(
            sum(r.socket_power_w for r in results)
        )
        assert event["energy_j"] == pytest.approx(sum(r.energy_j for r in results))
        assert 0.0 <= event["qos_guarantee"] <= 1.0
        for name in SERVICES:
            per = event["services"][name]
            assert per["offered_rps"] == pytest.approx(
                sum(r.observations[name].interval.arrival_rate for r in results)
            )
            assert per["qos_nodes"] == sum(
                r.observations[name].qos_met for r in results
            )

    def test_run_fleet_tags_run_events_with_node(self):
        manager, venv = _build_cluster(2)
        sink = MemorySink(validate=True)
        from repro.obs.context import ObsContext

        run_fleet(manager, venv, 3, obs=ObsContext(sink=sink))
        starts = sink.of_type("run_start")
        assert sorted(e["node"] for e in starts) == [0, 1]
        assert all("node" in e for e in sink.of_type("reward"))


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        steps = 16
        plain_manager, plain_venv = _build_cluster(2)
        plain = run_fleet(plain_manager, plain_venv, steps)

        first_manager, first_venv = _build_cluster(2)
        run_fleet(
            first_manager, first_venv, steps,
            checkpoint_every=8, checkpoint_dir=tmp_path,
        )
        resumed_manager, resumed_venv = _build_cluster(2)
        resumed = run_fleet(resumed_manager, resumed_venv, steps,
                            resume_from=tmp_path)
        for a, b in zip(plain, resumed):
            assert a.power_w == b.power_w
            for name in SERVICES:
                assert a.services[name].p99_ms == b.services[name].p99_ms
                assert a.services[name].arrival_rps == b.services[name].arrival_rps

    def test_state_roundtrip_restores_cluster_layer(self):
        venv = ClusterEnvironment.from_services(SERVICES, 2, seed=9,
                                                balancer="power_of_two")
        assignments = _static_assignments(venv)
        venv.step(assignments)
        tree = venv.state_dict()
        assert "cluster" in tree and "loads" in tree["cluster"]
        other = ClusterEnvironment.from_services(SERVICES, 2, seed=1,
                                                 balancer="power_of_two")
        other.load_state_dict(tree)
        a = venv.step(assignments)
        b = other.step(assignments)
        for x, y in zip(a, b):
            assert x.socket_power_w == y.socket_power_w


class TestExperiment:
    def _config(self, **overrides):
        base = dict(
            services=tuple(SERVICES), num_nodes=3, steps=12, seed=3,
            epsilon_mid_steps=5, epsilon_final_steps=10, window=6,
        )
        base.update(overrides)
        return ClusterConfig(**base)

    def test_vector_run_shape_and_reproducibility(self):
        result = run_cluster(self._config())
        assert result.num_nodes == 3 and len(result.traces) == 3
        assert set(result.qos_guarantee) == set(SERVICES)
        assert result.mean_cluster_power_w > 0
        again = run_cluster(self._config())
        assert again.qos_guarantee == result.qos_guarantee
        assert again.mean_cluster_power_w == result.mean_cluster_power_w
        assert again.total_energy_j == result.total_energy_j

    def test_scalar_engine_runs(self):
        result = run_cluster(self._config(engine="scalar", num_nodes=2))
        assert result.engine == "scalar" and len(result.traces) == 2
        assert "Cluster" in result.format_table()

    def test_registry_dispatch(self):
        from repro.experiments import run_experiment

        result = run_experiment("cluster", self._config(num_nodes=2, steps=4))
        assert result.num_nodes == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            self._config(balancer="nope")
        with pytest.raises(ConfigurationError):
            self._config(traffic="nope")
        with pytest.raises(ConfigurationError):
            self._config(engine="warp")
        with pytest.raises(ConfigurationError):
            self._config(num_nodes=1)  # two regions need two nodes

    def test_one_node_config_with_single_region(self):
        result = run_cluster(
            self._config(num_nodes=1, steps=4, regions=("r0",), window=4)
        )
        assert result.num_nodes == 1


class TestValidation:
    def test_topology_mismatch_rejected(self):
        venv = ClusterEnvironment.from_services(SERVICES, 2, seed=1)
        wrong = ClusterTopology(3, ("r0",))
        with pytest.raises(ConfigurationError):
            ClusterEnvironment(venv.envs, venv.traffic,
                               make_balancer("round_robin", wrong))
