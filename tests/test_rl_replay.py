"""Unit tests for uniform and prioritised replay buffers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.rl.prioritized import PrioritizedReplayBuffer
from repro.rl.replay import ReplayBuffer


def _transition(value: float):
    return {
        "state": np.full(3, value),
        "reward": np.array(value),
    }


def test_replay_add_and_len(rng):
    buffer = ReplayBuffer(10, rng)
    assert len(buffer) == 0
    buffer.add(_transition(1.0))
    assert len(buffer) == 1


def test_replay_wraps_at_capacity(rng):
    buffer = ReplayBuffer(3, rng)
    for value in range(5):
        buffer.add(_transition(float(value)))
    assert len(buffer) == 3
    batch = buffer.gather(np.array([0, 1, 2]))
    # slot 0 was overwritten by value 3, slot 1 by value 4
    assert set(batch["reward"].tolist()) == {3.0, 4.0, 2.0}


def test_replay_sample_shapes(rng):
    buffer = ReplayBuffer(10, rng)
    for value in range(6):
        buffer.add(_transition(float(value)))
    batch = buffer.sample(4)
    assert batch["state"].shape == (4, 3)
    assert batch["reward"].shape == (4,)
    assert batch["indices"].shape == (4,)


def test_replay_field_mismatch_rejected(rng):
    buffer = ReplayBuffer(10, rng)
    buffer.add(_transition(1.0))
    with pytest.raises(ShapeError):
        buffer.add({"state": np.ones(3)})
    with pytest.raises(ShapeError):
        buffer.add({"state": np.ones(4), "reward": np.array(1.0)})


def test_replay_sample_empty_raises(rng):
    with pytest.raises(ShapeError):
        ReplayBuffer(4, rng).sample(1)


def test_per_new_items_get_max_priority(rng):
    buffer = PrioritizedReplayBuffer(8, rng)
    buffer.add(_transition(0.0))
    buffer.update_priorities(np.array([0]), np.array([10.0]))
    buffer.add(_transition(1.0))
    # The new item should be as likely as the high-error one.
    assert buffer._tree[1] == pytest.approx(buffer._tree[0], rel=0.01)


def test_per_sampling_prefers_high_priority(rng):
    buffer = PrioritizedReplayBuffer(4, rng)
    for value in range(4):
        buffer.add(_transition(float(value)))
    # Slot 2 gets overwhelming priority.
    buffer.update_priorities(np.array([0, 1, 2, 3]), np.array([0.001, 0.001, 50.0, 0.001]))
    batch = buffer.sample(256, beta=1.0)
    counts = np.bincount(batch["indices"].astype(int), minlength=4)
    assert counts[2] > 0.8 * 256


def test_per_weights_normalised(rng):
    buffer = PrioritizedReplayBuffer(8, rng)
    for value in range(8):
        buffer.add(_transition(float(value)))
    buffer.update_priorities(np.arange(8), np.linspace(0.1, 2.0, 8))
    batch = buffer.sample(16, beta=0.5)
    assert batch["weights"].max() == pytest.approx(1.0)
    assert np.all(batch["weights"] > 0)


def test_per_beta_validation(rng):
    buffer = PrioritizedReplayBuffer(4, rng)
    buffer.add(_transition(0.0))
    with pytest.raises(ConfigurationError):
        buffer.sample(1, beta=1.5)


def test_per_alpha_validation(rng):
    with pytest.raises(ConfigurationError):
        PrioritizedReplayBuffer(4, rng, alpha=2.0)


def test_per_weights_match_true_sampling_probabilities(rng):
    """Regression: IS weights must come from the priorities the tree sampled
    with. The old code clamped them to ``eps ** alpha``, so a leaf whose
    actual priority sat below the clamp got a weight inconsistent with its
    true sampling probability."""
    buffer = PrioritizedReplayBuffer(8, rng, alpha=1.0, eps=1e-4)
    for value in range(8):
        buffer.add(_transition(float(value)))
    # Force every leaf's priority below eps ** alpha (bypassing the eps
    # floor update_priorities applies): under the old clamp all sampled
    # priorities collapsed to the same floor value, so the weights came out
    # uniform even though the true sampling probabilities span 100x.
    buffer._tree.update_batch(np.arange(8), np.linspace(1e-9, 1e-7, 8))
    batch = buffer.sample(512, beta=1.0)
    indices = batch["indices"].astype(int)
    probabilities = buffer._tree.priorities(indices) / buffer._tree.total
    # At beta = 1 the unnormalised weight is 1 / (N * p), so w * p must be
    # constant across the batch: E[w * indicator(i)] consistency.
    products = batch["weights"] * probabilities
    assert products.max() == pytest.approx(products.min(), rel=1e-9)


def test_per_expected_weighted_indicator_is_uniform(rng):
    """E_p[w(i) * 1{i = j}] = w_j p_j must be equal for every stored j, i.e.
    importance weighting exactly undoes the prioritised sampling bias."""
    buffer = PrioritizedReplayBuffer(4, rng, alpha=0.8)
    for value in range(4):
        buffer.add(_transition(float(value)))
    buffer.update_priorities(np.arange(4), np.array([0.01, 0.5, 1.0, 7.0]))
    batch = buffer.sample(2048, beta=1.0)
    indices = batch["indices"].astype(int)
    total = buffer._tree.total
    expectations = np.zeros(4)
    for j in range(4):
        mask = indices == j
        # Empirical E[w * indicator(j)] -- mean over the batch.
        expectations[j] = batch["weights"][mask].sum() / len(indices)
    # Each should estimate w_j * p_j, identical across j; Monte-Carlo
    # stratified sampling keeps the spread tight.
    assert expectations.max() < 1.35 * expectations.min()


def test_per_sample_smaller_buffer_than_batch(rng):
    buffer = PrioritizedReplayBuffer(16, rng)
    for value in range(3):
        buffer.add(_transition(float(value)))
    batch = buffer.sample(8, beta=0.7)
    assert batch["state"].shape == (8, 3)
    assert batch["weights"].shape == (8,)
    assert set(batch["indices"].astype(int)) <= {0, 1, 2}
    assert batch["weights"].max() == pytest.approx(1.0)


def test_per_update_priorities_batched_matches_scalar(rng):
    a = PrioritizedReplayBuffer(8, np.random.default_rng(0))
    b = PrioritizedReplayBuffer(8, np.random.default_rng(0))
    for value in range(8):
        a.add(_transition(float(value)))
        b.add(_transition(float(value)))
    errors = np.linspace(0.0, 3.0, 8)
    a.update_priorities(np.arange(8), errors)
    for index, error in zip(np.arange(8), errors):
        priority = float(abs(error)) + b.eps
        b._max_priority = max(b._max_priority, priority)
        b._tree.update(int(index), priority ** b.alpha)
    assert np.allclose(a._tree._tree, b._tree._tree)
    assert a._max_priority == b._max_priority


def test_per_batch_size_validation(rng):
    buffer = PrioritizedReplayBuffer(4, rng)
    buffer.add(_transition(0.0))
    with pytest.raises(ConfigurationError):
        buffer.sample(0)


def test_uniform_sample_smaller_buffer_than_batch(rng):
    buffer = ReplayBuffer(16, rng)
    for value in range(3):
        buffer.add(_transition(float(value)))
    batch = buffer.sample(10)
    assert batch["state"].shape == (10, 3)


def test_per_alpha_zero_is_uniform(rng):
    buffer = PrioritizedReplayBuffer(4, rng, alpha=0.0)
    for value in range(4):
        buffer.add(_transition(float(value)))
    buffer.update_priorities(np.arange(4), np.array([0.001, 0.001, 50.0, 0.001]))
    batch = buffer.sample(2000, beta=1.0)
    counts = np.bincount(batch["indices"].astype(int), minlength=4)
    assert counts.min() > 300  # roughly uniform
