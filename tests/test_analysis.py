"""Unit and property tests for the analysis package."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    bootstrap_ci,
    histogram_density,
    summary_quantiles,
    violin_stats,
)
from repro.analysis.textplot import bar_chart, series_table, sparkline
from repro.errors import ConfigurationError, ShapeError


# --------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------- #
def test_density_integrates_to_one(rng):
    density = histogram_density(rng.normal(size=5000), bins=60)
    assert float(np.sum(density.density) * density.bin_width) == pytest.approx(1.0)


def test_density_mode_near_true_mode(rng):
    density = histogram_density(rng.normal(loc=3.0, size=20000), bins=60)
    assert density.mode == pytest.approx(3.0, abs=0.3)


def test_density_at_outside_support_is_zero(rng):
    density = histogram_density(rng.uniform(0, 1, size=100))
    assert density.at(99.0) == 0.0
    assert density.at(0.5) > 0.0


def test_density_validation(rng):
    with pytest.raises(ConfigurationError):
        histogram_density([1.0])
    with pytest.raises(ConfigurationError):
        histogram_density([1.0, 2.0], bins=1)
    with pytest.raises(ConfigurationError):
        histogram_density([1.0, 2.0], bounds=(2.0, 1.0))


def test_violin_buckets_cover_population(rng):
    x = rng.uniform(0, 10, size=1000)
    y = x * 2 + rng.normal(size=1000)
    buckets = violin_stats(x, y, buckets=4)
    assert len(buckets) == 4
    assert sum(b.count for b in buckets) >= 990  # boundary overlap allowed
    # medians track the conditional mean of y|x
    medians = [b.median for b in buckets]
    assert medians == sorted(medians)


def test_violin_quartiles_ordered(rng):
    x = rng.uniform(0, 1, size=500)
    y = rng.normal(size=500)
    for bucket in violin_stats(x, y, buckets=3):
        assert bucket.whisker_low <= bucket.q25 <= bucket.median <= bucket.q75 <= bucket.whisker_high


def test_violin_shape_mismatch(rng):
    with pytest.raises(ShapeError):
        violin_stats([1.0, 2.0], [1.0])


def test_summary_quantiles_keys(rng):
    out = summary_quantiles(rng.normal(size=100), quantiles=(0.5, 0.99))
    assert set(out) == {"mean", "std", "p50", "p99"}
    with pytest.raises(ConfigurationError):
        summary_quantiles([])
    with pytest.raises(ConfigurationError):
        summary_quantiles([1.0], quantiles=(1.5,))


def test_bootstrap_ci_contains_true_mean(rng):
    data = rng.normal(loc=5.0, scale=1.0, size=400)
    low, high = bootstrap_ci(data, rng=rng)
    assert low < 5.0 < high
    assert high - low < 0.5


@settings(max_examples=25)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50))
def test_bootstrap_ci_is_ordered(data):
    low, high = bootstrap_ci(data, n_resamples=200)
    assert low <= high


# --------------------------------------------------------------------- #
# textplot
# --------------------------------------------------------------------- #
def test_sparkline_length_and_extremes():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_constant_series():
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"


def test_sparkline_explicit_bounds():
    line = sparkline([5.0], low=0.0, high=10.0)
    assert line in "▁▂▃▄▅▆▇█"


def test_bar_chart_renders_all_entries():
    chart = bar_chart({"twig": 0.7, "static": 1.0}, width=10, reference=1.0)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert "twig" in lines[0] and "0.70" in lines[0]
    assert lines[1].count("█") == 10  # static == reference -> full bar


def test_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        bar_chart({})
    with pytest.raises(ConfigurationError):
        bar_chart({"a": 1.0}, width=2)


def test_series_table_alignment():
    table = series_table({"qos": [99.0, 98.5], "power": [60.0, 61.5]}, index=[100, 200])
    lines = table.splitlines()
    assert len(lines) == 3
    assert "qos" in lines[0] and "power" in lines[0]
    assert "100" in lines[1]


def test_series_table_validation():
    with pytest.raises(ConfigurationError):
        series_table({})
    with pytest.raises(ConfigurationError):
        series_table({"a": [1.0], "b": [1.0, 2.0]})
    with pytest.raises(ConfigurationError):
        series_table({"a": [1.0]}, index=[1, 2])
