"""Unit tests for machine state: affinity, timesharing, migrations."""

import pytest

from repro.errors import AllocationError
from repro.server.machine import CoreAssignment, Machine
from repro.server.spec import ServerSpec


def test_apply_sets_affinity_and_frequency(spec):
    machine = Machine(spec)
    machine.apply({"svc": CoreAssignment(cores=(18, 19, 20), freq_index=5)})
    cores = machine.cores_of("svc")
    assert [c.core_id for c in cores] == [18, 19, 20]
    assert all(c.freq_index == 5 for c in cores)
    assert machine.frequency_of("svc") == pytest.approx(spec.dvfs[5])


def test_unassigned_cores_drop_to_lowest_dvfs(spec):
    machine = Machine(spec)
    machine.apply({"svc": CoreAssignment(cores=(18,), freq_index=8)})
    assert machine.cores[20].freq_index == 0


def test_timeshared_core_gets_max_dvfs(spec):
    machine = Machine(spec)
    machine.apply(
        {
            "a": CoreAssignment(cores=(18, 19), freq_index=2),
            "b": CoreAssignment(cores=(19, 20), freq_index=7),
        }
    )
    assert machine.cores[19].freq_index == 7  # arbitration: max of requests
    assert machine.cores[18].freq_index == 2
    assert machine.cores[20].freq_index == 7
    assert machine.cores[19].timeshared


def test_effective_capacity_splits_shared_cores(spec):
    machine = Machine(spec)
    machine.apply(
        {
            "a": CoreAssignment(cores=(18, 19), freq_index=0),
            "b": CoreAssignment(cores=(19,), freq_index=0),
        }
    )
    assert machine.effective_capacity("a") == pytest.approx(1.5)
    assert machine.effective_capacity("b") == pytest.approx(0.5)


def test_migration_counting(spec):
    machine = Machine(spec)
    machine.apply({"svc": CoreAssignment(cores=(18, 19), freq_index=0)})
    assert machine.migrations("svc") == 2  # initial placement counts entries
    machine.apply({"svc": CoreAssignment(cores=(18, 19), freq_index=3)})
    assert machine.migrations("svc") == 2  # DVFS change is not a migration
    machine.apply({"svc": CoreAssignment(cores=(19, 20), freq_index=3)})
    assert machine.migrations("svc") == 4  # one core left, one joined


def test_apply_validation(spec):
    machine = Machine(spec)
    with pytest.raises(AllocationError):
        machine.apply({"svc": CoreAssignment(cores=(), freq_index=0)})
    with pytest.raises(AllocationError):
        machine.apply({"svc": CoreAssignment(cores=(999,), freq_index=0)})
    with pytest.raises(AllocationError):
        machine.apply({"svc": CoreAssignment(cores=(1, 1), freq_index=0)})
    with pytest.raises(AllocationError):
        machine.apply({"svc": CoreAssignment(cores=(1,), freq_index=99)})


def test_frequency_of_unassigned_raises(spec):
    machine = Machine(spec)
    with pytest.raises(AllocationError):
        machine.frequency_of("ghost")


def test_hotplug(spec):
    machine = Machine(spec)
    machine.apply({"svc": CoreAssignment(cores=(18, 19), freq_index=0)})
    machine.set_hotplug([18], online=False)
    assert machine.effective_capacity("svc") == pytest.approx(1.0)
    machine.set_hotplug([18], online=True)
    assert machine.effective_capacity("svc") == pytest.approx(2.0)
