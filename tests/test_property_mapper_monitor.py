"""Property-based tests (hypothesis) for the mapper and the monitor.

These are the invariants the rest of the system leans on: the mapper
always produces placements that cover the request on the right socket and
never overlap when they fit; the monitor's output always stays inside the
unit hypercube regardless of raw readings.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.actions import Allocation
from repro.core.mapper import Mapper
from repro.pmc.monitor import SystemMonitor
from repro.server.machine import Machine
from repro.server.spec import ServerSpec

_SPEC = ServerSpec()

allocation_st = st.builds(
    Allocation,
    num_cores=st.integers(min_value=1, max_value=18),
    freq_index=st.integers(min_value=0, max_value=8),
    llc_ways=st.integers(min_value=0, max_value=20),
)


@settings(max_examples=60, deadline=None)
@given(
    requests=st.dictionaries(
        st.sampled_from(["svc-a", "svc-b", "svc-c"]),
        allocation_st,
        min_size=1,
        max_size=3,
    )
)
def test_mapper_always_satisfies_requests(requests):
    mapper = Mapper(_SPEC, socket_index=1)
    result = mapper.map(requests)
    socket = set(_SPEC.socket_core_ids(1))
    for name, request in requests.items():
        assignment = result[name]
        assert len(assignment.cores) == request.num_cores
        assert len(set(assignment.cores)) == request.num_cores
        assert set(assignment.cores) <= socket
        assert assignment.freq_index == request.freq_index


@settings(max_examples=60, deadline=None)
@given(
    requests=st.dictionaries(
        st.sampled_from(["svc-a", "svc-b"]),
        allocation_st,
        min_size=2,
        max_size=2,
    )
)
def test_mapper_disjoint_iff_fits(requests):
    mapper = Mapper(_SPEC, socket_index=1)
    result = mapper.map(requests)
    names = list(requests)
    total = sum(r.num_cores for r in requests.values())
    overlap = set(result[names[0]].cores) & set(result[names[1]].cores)
    if total <= 18:
        assert not overlap
    else:
        assert len(overlap) == total - 18


@settings(max_examples=60, deadline=None)
@given(
    requests=st.dictionaries(
        st.sampled_from(["a", "b", "c"]), allocation_st, min_size=1, max_size=3
    )
)
def test_mapper_way_quotas_always_fit(requests):
    mapper = Mapper(_SPEC, socket_index=1)
    result = mapper.map(requests)
    assert sum(a.llc_ways for a in result.values()) <= _SPEC.socket.llc_ways
    for assignment in result.values():
        assert assignment.llc_ways >= 0


@settings(max_examples=40, deadline=None)
@given(
    requests=st.dictionaries(
        st.sampled_from(["a", "b"]), allocation_st, min_size=1, max_size=2
    )
)
def test_mapper_output_always_applies_to_machine(requests):
    mapper = Mapper(_SPEC, socket_index=1)
    machine = Machine(_SPEC)
    machine.apply(mapper.map(requests))  # must not raise
    for name in requests:
        assert machine.effective_capacity(name) > 0


@settings(max_examples=60, deadline=None)
@given(
    readings=st.lists(
        st.floats(min_value=0.0, max_value=1e15, allow_nan=False),
        min_size=11,
        max_size=11,
    ),
    steps=st.integers(min_value=1, max_value=8),
)
def test_monitor_output_in_unit_hypercube(readings, steps):
    from repro.pmc.counters import COUNTER_NAMES, CounterCatalogue

    monitor = SystemMonitor(CounterCatalogue(_SPEC).max_values())
    named = dict(zip(COUNTER_NAMES, readings))
    state = None
    for _ in range(steps):
        state = monitor.observe("svc", named)
    assert state is not None
    assert np.all(state >= 0.0)
    assert np.all(state <= 1.0)
    assert state.shape == (11,)
