"""Unit and property tests for the queueing formulas."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.services.queueing import (
    erlang_c,
    mmc_sojourn_tail,
    response_time_quantile,
    utilization,
)


def test_utilization_basic():
    assert utilization(50.0, 10.0, 10.0) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        utilization(1.0, 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        utilization(-1.0, 1.0, 1.0)


def test_erlang_c_known_value():
    # M/M/1: P(wait) = rho
    assert erlang_c(1, 0.5) == pytest.approx(0.5)
    # M/M/2 at a=1: classic result Pw = 1/3
    assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)


def test_erlang_c_limits():
    assert erlang_c(4, 0.0) == 0.0
    assert erlang_c(4, 4.0) == 1.0
    assert erlang_c(4, 10.0) == 1.0


def test_erlang_c_fractional_interpolates():
    low = erlang_c(4, 2.0)
    high = erlang_c(5, 2.0)
    mid = erlang_c(4.5, 2.0)
    assert min(low, high) <= mid <= max(low, high)


def test_sojourn_tail_at_zero_is_one():
    assert mmc_sojourn_tail(0.0, 5.0, 1.0, 10.0) == pytest.approx(1.0)


def test_sojourn_tail_unstable_returns_one():
    assert mmc_sojourn_tail(10.0, 20.0, 1.0, 10.0) == 1.0


def test_mm1_sojourn_matches_closed_form():
    """For M/M/1 the sojourn time is exactly Exp(mu - lambda)."""
    lam, mu = 3.0, 5.0
    for t in (0.1, 0.5, 1.0, 2.0):
        expected = math.exp(-(mu - lam) * t)
        assert mmc_sojourn_tail(t, lam, mu, 1.0) == pytest.approx(expected, rel=1e-6)


def test_quantile_inverts_tail():
    lam, mu, c = 8.0, 1.0, 12.0
    q99 = response_time_quantile(lam, mu, c, 0.99)
    assert mmc_sojourn_tail(q99, lam, mu, c) == pytest.approx(0.01, abs=1e-4)


def test_quantile_unstable_is_inf():
    assert response_time_quantile(20.0, 1.0, 10.0) == math.inf


def test_quantile_validation():
    with pytest.raises(ConfigurationError):
        response_time_quantile(1.0, 1.0, 2.0, quantile=1.0)


@settings(max_examples=60)
@given(
    rho=st.floats(min_value=0.05, max_value=0.9),
    servers=st.floats(min_value=1.0, max_value=30.0),
)
def test_quantile_monotone_in_load(rho, servers):
    """Higher load never reduces the p99 latency."""
    mu = 1.0
    lam_low = rho * servers * mu * 0.5
    lam_high = rho * servers * mu
    low = response_time_quantile(lam_low, mu, servers)
    high = response_time_quantile(lam_high, mu, servers)
    assert high >= low - 1e-9


@settings(max_examples=60)
@given(
    lam=st.floats(min_value=0.1, max_value=5.0),
    extra=st.floats(min_value=0.5, max_value=10.0),
)
def test_quantile_monotone_in_servers(lam, extra):
    """More servers never increase the p99 latency."""
    mu = 1.0
    servers_small = lam / mu + 0.5
    servers_big = servers_small + extra
    small = response_time_quantile(lam, mu, servers_small)
    big = response_time_quantile(lam, mu, servers_big)
    assert big <= small + 1e-9


@settings(max_examples=40)
@given(
    t=st.floats(min_value=0.0, max_value=50.0),
    lam=st.floats(min_value=0.0, max_value=9.0),
    cv2=st.floats(min_value=0.1, max_value=4.0),
)
def test_tail_is_probability(t, lam, cv2):
    value = mmc_sojourn_tail(t, lam, 1.0, 10.0, cv2=cv2)
    assert 0.0 <= value <= 1.0
