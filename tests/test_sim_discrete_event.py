"""Tests for the discrete-event simulator, including cross-validation of
the analytic queueing formulas against per-request ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.services.profiles import get_profile
from repro.services.queueing import response_time_quantile
from repro.sim.discrete_event import (
    MultiServerQueue,
    deterministic_service,
    exponential_service,
    lognormal_service,
    simulate_service_point,
)


def test_samplers_have_requested_means(rng):
    for factory in (exponential_service, deterministic_service):
        sampler = factory(0.05)
        samples = [sampler(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.05, rel=0.1)
    sampler = lognormal_service(0.05, cv2=2.0)
    samples = np.array([sampler(rng) for _ in range(20000)])
    assert samples.mean() == pytest.approx(0.05, rel=0.1)
    assert (samples.std() / samples.mean()) ** 2 == pytest.approx(2.0, rel=0.3)


def test_sampler_validation():
    with pytest.raises(ConfigurationError):
        exponential_service(0.0)
    with pytest.raises(ConfigurationError):
        lognormal_service(1.0, 0.0)


def test_mm1_matches_theory(rng):
    """M/M/1 sojourn mean = 1/(mu - lambda)."""
    lam, mu = 40.0, 50.0
    queue = MultiServerQueue(1, exponential_service(1.0 / mu), lam, rng)
    stats = queue.run(duration_s=2000.0, warmup_s=100.0)
    assert stats.mean_sojourn_s == pytest.approx(1.0 / (mu - lam), rel=0.15)


def test_mmc_p99_matches_analytic_quantile(rng):
    """The closed-form p99 used by the interval model agrees with the
    event-driven ground truth for M/M/c."""
    lam, mu, servers = 80.0, 10.0, 12
    queue = MultiServerQueue(servers, exponential_service(1.0 / mu), lam, rng)
    stats = queue.run(duration_s=3000.0, warmup_s=100.0)
    analytic_ms = response_time_quantile(lam, mu, servers, 0.99) * 1000.0
    assert stats.p99_sojourn_ms == pytest.approx(analytic_ms, rel=0.2)


def test_utilization_matches_offered_load(rng):
    lam, mu, servers = 30.0, 10.0, 6
    queue = MultiServerQueue(servers, exponential_service(1.0 / mu), lam, rng)
    stats = queue.run(duration_s=1500.0, warmup_s=50.0)
    assert stats.utilization == pytest.approx(lam / (mu * servers), rel=0.1)


def test_queue_limit_drops_under_overload(rng):
    queue = MultiServerQueue(
        2, exponential_service(0.1), arrival_rate=100.0, rng=rng, queue_limit=10
    )
    stats = queue.run(duration_s=60.0, warmup_s=5.0)
    assert stats.dropped > 0
    assert stats.max_queue_len <= 10


def test_validation(rng):
    with pytest.raises(ConfigurationError):
        MultiServerQueue(0, exponential_service(0.1), 1.0, rng)
    queue = MultiServerQueue(1, exponential_service(0.1), 1.0, rng)
    with pytest.raises(ConfigurationError):
        queue.run(duration_s=0.0)
    with pytest.raises(ConfigurationError):
        queue.run(duration_s=10.0, warmup_s=10.0)


@pytest.mark.slow
def test_interval_model_calibrated_against_discrete_event(rng):
    """LCService's stable-regime p99 sits within ~2x of per-request ground
    truth across moderate loads (the interval model is an approximation;
    what matters is the agreement in *shape* and knee position)."""
    from repro.services.service import LCService

    profile = get_profile("masstree")
    for fraction in (0.3, 0.6):
        arrival = fraction * profile.max_load_rps
        stats = simulate_service_point(
            profile, arrival, cores=18, frequency_ghz=2.0, max_frequency_ghz=2.0,
            rng=np.random.default_rng(5), duration_s=150.0, warmup_s=15.0,
        )
        service = LCService(profile, 2.0, np.random.default_rng(6), latency_noise_std=0.0)
        interval_p99 = service.step(arrival, cores=18, frequency_ghz=2.0).p99_ms
        des_p99 = stats.p99_latency_ms
        ratio = interval_p99 / des_p99
        assert 0.3 < ratio < 3.0, (fraction, interval_p99, des_p99)
