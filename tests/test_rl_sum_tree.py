"""Unit and property tests for the prioritised-replay sum tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rl.sum_tree import SumTree


def test_total_tracks_updates():
    tree = SumTree(4)
    tree.update(0, 1.0)
    tree.update(3, 2.0)
    assert tree.total == pytest.approx(3.0)
    tree.update(0, 0.5)
    assert tree.total == pytest.approx(2.5)


def test_find_returns_correct_leaf():
    tree = SumTree(4)
    for leaf, priority in enumerate([1.0, 2.0, 3.0, 4.0]):
        tree.update(leaf, priority)
    # cumulative: [1, 3, 6, 10]
    assert tree.find(0.5) == 0
    assert tree.find(2.5) == 1
    assert tree.find(5.0) == 2
    assert tree.find(9.9) == 3


def test_find_never_returns_zero_priority_leaf():
    tree = SumTree(8)
    tree.update(5, 3.0)
    for mass in np.linspace(0, 3.0, 17):
        assert tree.find(float(mass)) == 5


def test_find_on_empty_tree_raises():
    with pytest.raises(ConfigurationError):
        SumTree(4).find(0.5)


def test_update_validation():
    tree = SumTree(4)
    with pytest.raises(IndexError):
        tree.update(4, 1.0)
    with pytest.raises(ConfigurationError):
        tree.update(0, -1.0)
    with pytest.raises(ConfigurationError):
        tree.update(0, float("nan"))


def test_non_power_of_two_capacity():
    tree = SumTree(5)
    for leaf in range(5):
        tree.update(leaf, 1.0)
    assert tree.total == pytest.approx(5.0)
    found = {tree.find(m) for m in np.linspace(0.01, 4.99, 50)}
    assert found == set(range(5))


@settings(max_examples=50)
@given(
    priorities=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=64,
    )
)
def test_total_equals_sum_of_priorities(priorities):
    tree = SumTree(len(priorities))
    for leaf, priority in enumerate(priorities):
        tree.update(leaf, priority)
    assert tree.total == pytest.approx(sum(priorities), abs=1e-9)


# ---------------------------------------------------------------------- #
# edge cases the batched implementations must preserve
# ---------------------------------------------------------------------- #
def test_find_with_mass_equal_total_and_zero_padding():
    # Capacity 5 pads the leaf level to 8 with trailing zero leaves; a draw
    # of exactly the total mass must land on the last *positive* leaf, never
    # a padded one.
    tree = SumTree(5)
    for leaf in range(5):
        tree.update(leaf, 1.0 + leaf)
    assert tree.find(tree.total) == 4
    assert tree.find_batch(np.array([tree.total]))[0] == 4
    # Same with the last real leaf zeroed out.
    tree.update(4, 0.0)
    assert tree.find(tree.total) == 3
    assert tree.find_batch(np.array([tree.total]))[0] == 3


def test_find_batch_matches_scalar_find():
    rng = np.random.default_rng(5)
    for capacity in (1, 3, 8, 21):
        tree = SumTree(capacity)
        priorities = rng.random(capacity) * (rng.random(capacity) < 0.7)
        priorities[0] = max(priorities[0], 0.01)  # keep the tree non-empty
        tree.update_batch(np.arange(capacity), priorities)
        masses = np.concatenate([rng.random(64) * tree.total, [0.0, tree.total]])
        expected = np.array([tree.find(float(m)) for m in masses])
        assert np.array_equal(tree.find_batch(masses), expected)


def test_update_batch_matches_sequential_updates():
    rng = np.random.default_rng(6)
    sequential, batched = SumTree(13), SumTree(13)
    leaves = rng.integers(0, 13, size=40)
    priorities = rng.random(40) * 9
    for leaf, priority in zip(leaves, priorities):
        sequential.update(int(leaf), float(priority))
    batched.update_batch(leaves, priorities)
    # Duplicate leaves: last write wins in both, sums agree everywhere.
    assert np.allclose(sequential._tree, batched._tree)


def test_update_batch_validation():
    tree = SumTree(4)
    with pytest.raises(IndexError):
        tree.update_batch(np.array([0, 4]), np.array([1.0, 1.0]))
    with pytest.raises(ConfigurationError):
        tree.update_batch(np.array([0]), np.array([-1.0]))
    with pytest.raises(ConfigurationError):
        tree.update_batch(np.array([0]), np.array([float("nan")]))
    with pytest.raises(ConfigurationError):
        tree.update_batch(np.array([0, 1]), np.array([1.0]))
    tree.update_batch(np.array([], dtype=np.int64), np.array([]))  # no-op
    tree.update(0, 2.0)
    assert tree.total == pytest.approx(2.0)


def test_find_batch_on_empty_tree_raises():
    with pytest.raises(ConfigurationError):
        SumTree(4).find_batch(np.array([0.5]))


def test_capacity_one_batched_ops():
    tree = SumTree(1)
    tree.update_batch(np.array([0]), np.array([3.0]))
    assert tree.total == pytest.approx(3.0)
    assert tree.find_batch(np.array([0.0, 1.5, 3.0])).tolist() == [0, 0, 0]


@settings(max_examples=50)
@given(
    priorities=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=64,
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_find_respects_cumulative_intervals(priorities, fraction):
    tree = SumTree(len(priorities))
    for leaf, priority in enumerate(priorities):
        tree.update(leaf, priority)
    mass = fraction * tree.total
    leaf = tree.find(mass)
    cumulative = np.cumsum([0.0] + priorities)
    # The mass must fall inside (or on the boundary of) the returned leaf's
    # cumulative interval.
    assert cumulative[leaf] <= mass + 1e-6
    assert mass <= cumulative[leaf + 1] + 1e-6
