"""Unit and property tests for the prioritised-replay sum tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rl.sum_tree import SumTree


def test_total_tracks_updates():
    tree = SumTree(4)
    tree.update(0, 1.0)
    tree.update(3, 2.0)
    assert tree.total == pytest.approx(3.0)
    tree.update(0, 0.5)
    assert tree.total == pytest.approx(2.5)


def test_find_returns_correct_leaf():
    tree = SumTree(4)
    for leaf, priority in enumerate([1.0, 2.0, 3.0, 4.0]):
        tree.update(leaf, priority)
    # cumulative: [1, 3, 6, 10]
    assert tree.find(0.5) == 0
    assert tree.find(2.5) == 1
    assert tree.find(5.0) == 2
    assert tree.find(9.9) == 3


def test_find_never_returns_zero_priority_leaf():
    tree = SumTree(8)
    tree.update(5, 3.0)
    for mass in np.linspace(0, 3.0, 17):
        assert tree.find(float(mass)) == 5


def test_find_on_empty_tree_raises():
    with pytest.raises(ConfigurationError):
        SumTree(4).find(0.5)


def test_update_validation():
    tree = SumTree(4)
    with pytest.raises(IndexError):
        tree.update(4, 1.0)
    with pytest.raises(ConfigurationError):
        tree.update(0, -1.0)
    with pytest.raises(ConfigurationError):
        tree.update(0, float("nan"))


def test_non_power_of_two_capacity():
    tree = SumTree(5)
    for leaf in range(5):
        tree.update(leaf, 1.0)
    assert tree.total == pytest.approx(5.0)
    found = {tree.find(m) for m in np.linspace(0.01, 4.99, 50)}
    assert found == set(range(5))


@settings(max_examples=50)
@given(
    priorities=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=64,
    )
)
def test_total_equals_sum_of_priorities(priorities):
    tree = SumTree(len(priorities))
    for leaf, priority in enumerate(priorities):
        tree.update(leaf, priority)
    assert tree.total == pytest.approx(sum(priorities), abs=1e-9)


@settings(max_examples=50)
@given(
    priorities=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=64,
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_find_respects_cumulative_intervals(priorities, fraction):
    tree = SumTree(len(priorities))
    for leaf, priority in enumerate(priorities):
        tree.update(leaf, priority)
    mass = fraction * tree.total
    leaf = tree.find(mass)
    cumulative = np.cumsum([0.0] + priorities)
    # The mass must fall inside (or on the boundary of) the returned leaf's
    # cumulative interval.
    assert cumulative[leaf] <= mass + 1e-6
    assert mass <= cumulative[leaf + 1] + 1e-6
