"""CLI tests for ``repro trace`` against the golden trace fixture."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import read_trace, summarize_events

GOLDEN = str(Path(__file__).parent / "data" / "golden_trace.jsonl")


def test_golden_fixture_aggregates():
    summary = summarize_events(read_trace(GOLDEN))
    assert summary.manager == "twig-s"
    assert summary.steps == 4
    assert summary.train_steps == 1
    assert summary.final_loss == pytest.approx(0.5)
    assert summary.mean_power_w == pytest.approx(50.0)
    assert summary.final_energy_j == pytest.approx(200.0)
    masstree = summary.services["masstree"]
    assert masstree.qos_guarantee_pct == pytest.approx(75.0)
    assert masstree.violations == 1
    assert masstree.longest_violation_streak == 1
    assert masstree.mean_reward == pytest.approx((2.0 + 1.0 - 3.375 + 3.0) / 4)
    assert masstree.final_reward == pytest.approx(3.0)
    assert masstree.mean_cores == pytest.approx(4.0)


def test_summarize_prints_aggregates(capsys):
    assert main(["trace", "summarize", GOLDEN]) == 0
    out = capsys.readouterr().out
    assert "twig-s, 4 intervals" in out
    assert "qos 75.0%" in out
    assert "1 violations" in out
    assert "mean reward 0.656" in out


def test_summarize_json_matches_summary(capsys):
    assert main(["trace", "summarize", GOLDEN, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    expected = summarize_events(read_trace(GOLDEN)).to_dict()
    assert data == expected


def test_tail_prints_last_events(capsys):
    assert main(["trace", "tail", GOLDEN, "-n", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[-1])["ev"] == "run_end"


def test_tail_filters_by_type(capsys):
    assert main(["trace", "tail", GOLDEN, "--type", "reward"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 4
    assert all(json.loads(line)["ev"] == "reward" for line in lines)


def test_export_csv_flattens_intervals(tmp_path, capsys):
    out = tmp_path / "intervals.csv"
    assert main(["trace", "export-csv", GOLDEN, "--type", "interval", "-o", str(out)]) == 0
    import csv

    with out.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert rows[0]["services.masstree.p99_ms"] == "0.8"
    assert rows[-1]["energy_j"] == "200.0"


def test_export_csv_unknown_type_fails(capsys):
    assert main(["trace", "export-csv", GOLDEN, "--type", "nope"]) == 1


def test_report_renders_curve_and_timeline(capsys):
    assert main(["trace", "report", GOLDEN, "--bucket", "2"]) == 0
    out = capsys.readouterr().out
    assert "Learning curve" in out
    assert "Violation timeline (1 episodes)" in out
    assert "masstree" in out
    # No manifest next to the golden trace -> no timings section.
    assert "Timings" not in out


def _manifest_with_timings(path):
    from repro.obs.manifest import RunManifest

    mean = {"count": 5, "total_s": 0.5, "mean_ms": 100.0,
            "p50_ms": 100.0, "p99_ms": 100.0, "max_ms": 100.0}
    RunManifest(
        experiment_id="fig07",
        timings={
            "agent.train": dict(mean),
            "agent.train.forward": dict(mean),
            "agent.train.backward": dict(mean),
            "agent.train.optim": dict(mean),
            "agent.train.replay": dict(mean),
        },
    ).write(path)


def test_report_surfaces_train_timings_from_manifest(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    trace.write_text(Path(GOLDEN).read_text())
    _manifest_with_timings(tmp_path / "manifest.json")
    # Auto-discovered from the trace file's directory.
    assert main(["trace", "report", str(trace), "--bucket", "2"]) == 0
    out = capsys.readouterr().out
    assert "Timings" in out
    for section in ("forward", "backward", "optim", "replay"):
        assert f"agent.train.{section}" in out
    # --no-timings suppresses the section even with a manifest present.
    assert main(["trace", "report", str(trace), "--bucket", "2", "--no-timings"]) == 0
    assert "Timings" not in capsys.readouterr().out


def test_report_explicit_manifest_path(tmp_path, capsys):
    manifest = tmp_path / "elsewhere.json"
    _manifest_with_timings(manifest)
    assert main(["trace", "report", GOLDEN, "--bucket", "2", "--manifest", str(manifest)]) == 0
    assert "agent.train.backward" in capsys.readouterr().out
    assert main(["trace", "report", GOLDEN, "--manifest", str(tmp_path / "nope.json")]) == 1
    assert "not found" in capsys.readouterr().err


def test_summarize_missing_file_is_clean_cli_error(capsys):
    assert main(["trace", "summarize", "/nonexistent.jsonl"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: trace file not found")
    assert "Traceback" not in err
