"""Unit tests for service profiles and their derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.services.profiles import (
    TAILBENCH_SERVICES,
    ServiceProfile,
    builtin_profiles,
    get_profile,
)


def test_builtin_catalogue_contains_paper_services():
    profiles = builtin_profiles()
    for name in ("masstree", "xapian", "moses", "img-dnn", "memcached", "web-search"):
        assert name in profiles
    assert set(TAILBENCH_SERVICES) <= set(profiles)


def test_paper_table2_loads_recorded():
    assert get_profile("masstree").paper_max_load_rps == 2400
    assert get_profile("xapian").paper_max_load_rps == 1000
    assert get_profile("moses").paper_max_load_rps == 2800
    assert get_profile("img-dnn").paper_max_load_rps == 1100
    assert get_profile("masstree").paper_qos_target_ms == pytest.approx(1.39)


def test_unknown_profile_raises():
    with pytest.raises(ConfigurationError):
        get_profile("nonexistent")


def test_effective_cores_amdahl(masstree):
    assert masstree.effective_cores(1) == pytest.approx(1.0)
    assert masstree.effective_cores(18) < 18.0
    # diminishing returns: marginal core value decreases
    gain_early = masstree.effective_cores(2) - masstree.effective_cores(1)
    gain_late = masstree.effective_cores(18) - masstree.effective_cores(17)
    assert gain_late < gain_early


def test_frequency_factor_bounds(masstree):
    assert masstree.frequency_factor(2.0, 2.0) == pytest.approx(1.0)
    # lower frequency -> slower
    assert masstree.frequency_factor(1.2, 2.0) > 1.0
    # memory-bound fraction limits the slowdown below the pure clock ratio
    assert masstree.frequency_factor(1.2, 2.0) < 2.0 / 1.2


def test_frequency_sensitivity_ordering():
    """Img-dnn (compute bound) suffers more from low clocks than Masstree."""
    img = get_profile("img-dnn")
    mt = get_profile("masstree")
    assert img.frequency_factor(1.2, 2.0) > mt.frequency_factor(1.2, 2.0)


def test_capacity_knee_near_max_load():
    """With 18 cores at max DVFS the capacity sits just above Table II load."""
    for name in TAILBENCH_SERVICES:
        profile = get_profile(name)
        capacity = profile.capacity_rps(18, 2.0, 2.0)
        assert 1.0 < capacity / profile.max_load_rps < 1.25, name


def test_capacity_monotonicity(moses):
    assert moses.capacity_rps(10, 2.0, 2.0) > moses.capacity_rps(5, 2.0, 2.0)
    assert moses.capacity_rps(10, 2.0, 2.0) > moses.capacity_rps(10, 1.2, 2.0)
    assert moses.capacity_rps(10, 2.0, 2.0, inflation=1.0) > moses.capacity_rps(
        10, 2.0, 2.0, inflation=1.5
    )


def test_paper_service_characters():
    """The paper's qualitative characterisations hold in the profiles."""
    moses = get_profile("moses")
    masstree = get_profile("masstree")
    # Moses: high cache/bandwidth demand.
    assert moses.membw_per_req_mb > masstree.membw_per_req_mb
    assert moses.llc_working_set_mb > masstree.llc_working_set_mb
    # Masstree: extremely sensitive to bandwidth interference.
    assert masstree.membw_sensitivity > moses.membw_sensitivity


def test_with_qos_target(masstree):
    changed = masstree.with_qos_target(5.0)
    assert changed.qos_target_ms == 5.0
    assert changed.name == masstree.name
    assert masstree.qos_target_ms != 5.0  # original untouched


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        get_profile("masstree").effective_cores(0)
    base = get_profile("masstree")
    with pytest.raises(ConfigurationError):
        ServiceProfile(**{**base.__dict__, "serial_fraction": 1.5})
    with pytest.raises(ConfigurationError):
        ServiceProfile(**{**base.__dict__, "cpu_ms_per_req": -1.0})
