"""Unit tests for repro.rl.schedules."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.rl.schedules import LinearSchedule, PiecewiseSchedule


def test_linear_endpoints():
    sched = LinearSchedule(1.0, 0.0, 100)
    assert sched(0) == 1.0
    assert sched(100) == 0.0
    assert sched(50) == pytest.approx(0.5)


def test_linear_clamps_outside_range():
    sched = LinearSchedule(0.4, 1.0, 10)
    assert sched(-5) == 0.4
    assert sched(1000) == 1.0


def test_linear_rejects_nonpositive_steps():
    with pytest.raises(ConfigurationError):
        LinearSchedule(1.0, 0.0, 0)


def test_piecewise_paper_epsilon():
    eps = PiecewiseSchedule([(0, 1.0), (10_000, 0.1), (25_000, 0.01)])
    assert eps(0) == 1.0
    assert eps(10_000) == pytest.approx(0.1)
    assert eps(25_000) == pytest.approx(0.01)
    assert eps(5_000) == pytest.approx(0.55)
    assert eps(100_000) == pytest.approx(0.01)


def test_piecewise_exactly_on_knot_boundaries():
    """Every knot — first, interior, last — must evaluate to exactly its
    own value, with the step just before/after interpolating on the correct
    segment (no off-by-one at segment joins)."""
    knots = [(0, 1.0), (100, 0.5), (300, 0.2), (1_000, 0.01)]
    sched = PiecewiseSchedule(knots)
    for step, value in knots:
        assert sched(step) == pytest.approx(value)
    # One step either side of an interior knot interpolates on the
    # adjacent segments, not across the knot.
    assert sched(99) == pytest.approx(0.5 + (1.0 - 0.5) / 100)
    assert sched(101) == pytest.approx(0.5 - (0.5 - 0.2) / 200)
    # Clamping at the outer knots.
    assert sched(-1) == 1.0
    assert sched(1_001) == 0.01


def test_piecewise_requires_increasing_knots():
    with pytest.raises(ConfigurationError):
        PiecewiseSchedule([(10, 1.0), (10, 0.5)])
    with pytest.raises(ConfigurationError):
        PiecewiseSchedule([(10, 1.0), (5, 0.5)])
    with pytest.raises(ConfigurationError):
        PiecewiseSchedule([(0, 1.0)])


@given(st.integers(min_value=-100, max_value=30_000))
def test_piecewise_monotone_decreasing_for_decreasing_knots(step):
    eps = PiecewiseSchedule([(0, 1.0), (10_000, 0.1), (25_000, 0.01)])
    assert 0.01 <= eps(step) <= 1.0
    assert eps(step + 1) <= eps(step) + 1e-12
