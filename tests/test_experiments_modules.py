"""Smoke tests for the per-artifact experiment modules (tiny configs).

These verify each experiment runs end-to-end, produces a well-formed
Result with a printable table, and satisfies basic sanity invariants. The
full-shape assertions live in benchmarks/ where the budgets are larger.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import REGISTRY, get_entry, run_experiment
from repro.experiments.common import HarnessConfig
from repro.experiments.fig01_pmc_prediction import Fig01Config
from repro.experiments.fig04_power_paae import Fig04Config
from repro.experiments.mem_complexity import MemComplexityConfig
from repro.experiments.tab01_pmc_selection import Tab01Config
from repro.experiments.tab02_capacity import Tab02Config
from repro.experiments.tab03_overhead import Tab03Config


def test_registry_covers_every_artifact():
    expected = {
        "fig01", "tab01", "tab02", "tab03", "fig04", "fig05", "fig06",
        "fig07", "mem", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
        "fleet", "cluster", "hier",
    }
    assert set(REGISTRY) == expected


def test_registry_unknown_id():
    with pytest.raises(ConfigurationError):
        get_entry("fig99")


def test_fig01_tiny():
    result = run_experiment("fig01", Fig01Config(
        services=("memcached",), samples=300, epochs=60, load_segment=10
    ))
    stats = result.per_service["memcached"]
    assert np.isfinite(stats["pmc"].mean_error_ms)
    assert np.isfinite(stats["ipc"].std_error_ms)
    assert "memcached" in result.format_table()


def test_tab01_tiny():
    result = run_experiment("tab01", Tab01Config(
        services=("masstree",), core_counts=(6, 18), dvfs_indices=(0, 8),
        load_fractions=(0.3, 0.7), seconds_per_point=4,
    ))
    assert sorted(result.selection.importance_rank.values()) == list(range(1, 12))
    assert result.samples_collected > 0
    assert "Table I" in result.format_table()


def test_tab02_tiny():
    result = run_experiment("tab02", Tab02Config(
        services=("masstree",), seconds_per_level=4, step_fraction=0.1
    ))
    cap = result.per_service["masstree"]
    assert cap.max_load_rps > 0
    assert cap.derived_qos_target_ms > 0
    assert "masstree" in result.format_table()


def test_tab03_runs():
    result = run_experiment("tab03", Tab03Config(repeats=3, paper_sized_network=False))
    assert result.gradient_step_ms > 0
    assert result.total_ms > 0
    assert "overhead" in result.format_table()


def test_fig04_tiny():
    result = run_experiment("fig04", Fig04Config(
        services=("masstree",), loads=(0.2, 0.5), n_candidates=300,
        seconds_per_point=2,
    ))
    assert result.overall_paae["masstree"] > 0
    assert -1.0 <= result.r2["masstree"] <= 1.0
    assert "PAAE" in result.format_table()


def test_mem_complexity_values():
    result = run_experiment("mem", MemComplexityConfig())
    assert result.hipster_entries_paper_formula == 25 * 3 ** 30
    assert result.twig_bytes < 5e6
    assert "Twig BDQ" in result.format_table()


@pytest.mark.slow
def test_fig06_quick_harness():
    from repro.experiments.fig06_mapping_single import Fig06Config

    result = run_experiment(
        "fig06", Fig06Config(harness=HarnessConfig.quick())
    )
    assert set(result.summaries) == {"heracles", "hipster", "twig-s"}
    for manager, hist in result.core_histograms.items():
        assert hist.sum() == pytest.approx(1.0), manager
    assert "Figure 6" in result.format_table()
