"""Array-state FleetTwig vs the frozen dict-state reference.

The array control plane (:class:`repro.engine.fleet.FleetTwig` holding
``(num_envs, num_services)`` matrices plus one
:class:`~repro.pmc.monitor.MonitorBank`) must be *bit-identical* to the
original per-env-dict implementation, preserved verbatim as
:class:`repro.engine.fleet_reference.DictFleetTwig`: same trajectories,
same RNG streams, same agent state, and a loadable legacy checkpoint
format. These tests are the pin.
"""

import numpy as np
import pytest

from repro.core.actions import Allocation
from repro.core.config import TwigConfig
from repro.core.reward import RewardBreakdown
from repro.engine.fleet import FleetTwig
from repro.engine.fleet_reference import DictFleetTwig
from repro.engine.rollout import run_fleet
from repro.engine.vector_env import VectorEnvironment
from repro.errors import CheckpointError, ConfigurationError
from repro.hier import BudgetConfig, HierFleetTwig
from repro.pmc.counters import CounterCatalogue
from repro.pmc.monitor import MonitorBank, SystemMonitor
from repro.services.profiles import get_profile

SERVICES = ["masstree", "xapian"]
FRACTIONS = {"masstree": 0.4, "xapian": 0.5}
SEED = 7


def _twig_config():
    return TwigConfig.fast(epsilon_mid_steps=15, epsilon_final_steps=30)


def _build(cls, num_envs, seed=SEED, **kwargs):
    venv = VectorEnvironment.from_services(SERVICES, FRACTIONS, num_envs, seed)
    manager = cls(
        [get_profile(s) for s in SERVICES],
        _twig_config(),
        np.random.default_rng(seed + 1),
        num_envs=num_envs,
        **kwargs,
    )
    return manager, venv


def _assert_tree_equal(a, b, path="root"):
    if isinstance(a, dict):
        assert isinstance(b, dict), path
        assert set(a) == set(b), path
        for key in a:
            _assert_tree_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        assert a.shape == b.shape, path
        assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), path
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_tree_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, path


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    for e, (ta, tb) in enumerate(zip(a, b)):
        assert ta.power_w == tb.power_w, e
        assert ta.true_power_w == tb.true_power_w, e
        assert dict(ta.migrations) == dict(tb.migrations), e
        for name in SERVICES:
            sa, sb = ta.services[name], tb.services[name]
            assert sa.p99_ms == sb.p99_ms, (e, name)
            assert sa.arrival_rps == sb.arrival_rps, (e, name)
            assert sa.cores == sb.cores, (e, name)
            assert sa.frequency_ghz == sb.frequency_ghz, (e, name)


def _assert_managers_equivalent(array_mgr, dict_mgr):
    """Array manager state == dict manager state, field by field."""
    # Identical RNG streams: exact bit-generator state, not closeness.
    assert (
        array_mgr._rng.bit_generator.state == dict_mgr._rng.bit_generator.state
    )
    assert (
        array_mgr.agent._rng.bit_generator.state
        == dict_mgr.agent._rng.bit_generator.state
    )
    # Same learned state (network weights, replay, schedule counters).
    _assert_tree_equal(array_mgr.agent.state_dict(), dict_mgr.agent.state_dict())
    # The array side's lazily-built dict views match the reference dicts.
    for e in range(array_mgr.num_envs):
        assert array_mgr._last_allocations[e] == dict_mgr._last_allocations[e]
        assert (
            array_mgr._last_estimated_power[e] == dict_mgr._last_estimated_power[e]
        )
        assert array_mgr.last_rewards[e] == dict_mgr.last_rewards[e]
    # MonitorBank rows == per-env SystemMonitor smoothed states.
    states = array_mgr.monitor_bank.states()
    k = len(SERVICES)
    for e, monitor in enumerate(dict_mgr.monitors):
        for i, name in enumerate(SERVICES):
            assert np.array_equal(states[e * k + i], monitor.state(name)), (e, name)


class TestArrayDictEquivalence:
    @pytest.mark.parametrize(
        "num_envs,steps", [(1, 12), (4, 10), (64, 4)]
    )
    def test_bit_identical_trajectories(self, num_envs, steps):
        array_mgr, array_venv = _build(FleetTwig, num_envs)
        dict_mgr, dict_venv = _build(DictFleetTwig, num_envs)
        array_traces = run_fleet(array_mgr, array_venv, steps)
        dict_traces = run_fleet(dict_mgr, dict_venv, steps)
        _assert_traces_equal(array_traces, dict_traces)
        _assert_managers_equivalent(array_mgr, dict_mgr)
        # The environments saw identical action streams.
        _assert_tree_equal(array_venv.state_dict(), dict_venv.state_dict())


class TestHookFallback:
    def test_dict_hook_overrides_still_work(self):
        # Subclasses written against the original per-env dict hooks must
        # be detected and served through per-env calls — same trajectory
        # from the array manager and the reference.
        def make_subclass(base):
            class Shaped(base):
                def _shape_rewards(self, env_index, breakdowns):
                    return {
                        name: RewardBreakdown(
                            total=b.total * 0.5,
                            qos_rew=b.qos_rew,
                            power_rew=b.power_rew,
                            violation=b.violation,
                        )
                        for name, b in breakdowns.items()
                    }

                def _constrain_allocations(self, env_index, allocations, result):
                    changed = dict(allocations)
                    for name, a in allocations.items():
                        if a.num_cores > 14:
                            changed[name] = Allocation(
                                num_cores=14,
                                freq_index=a.freq_index,
                                llc_ways=a.llc_ways,
                            )
                    return changed

            return Shaped

        array_mgr, array_venv = _build(make_subclass(FleetTwig), 3)
        dict_mgr, dict_venv = _build(make_subclass(DictFleetTwig), 3)
        array_traces = run_fleet(array_mgr, array_venv, 10)
        dict_traces = run_fleet(dict_mgr, dict_venv, 10)
        _assert_traces_equal(array_traces, dict_traces)
        assert (
            array_mgr.agent._rng.bit_generator.state
            == dict_mgr.agent._rng.bit_generator.state
        )
        # The constraint actually fired somewhere, or the test is vacuous.
        cores = [
            c
            for t in array_traces
            for name in SERVICES
            for c in t.services[name].cores
        ]
        assert max(cores) <= 14


class TestHierFallback:
    def test_hier_array_repair_matches_dict_hooks(self):
        # HierFleetTwig's vectorized budget repair/shaping vs a subclass
        # that re-overrides the dict hooks (forcing the per-env path).
        class DictPath(HierFleetTwig):
            def _shape_rewards(self, env_index, breakdowns):
                return HierFleetTwig._shape_rewards(self, env_index, breakdowns)

            def _constrain_allocations(self, env_index, allocations, result):
                return HierFleetTwig._constrain_allocations(
                    self, env_index, allocations, result
                )

        results = {}
        for cls in (HierFleetTwig, DictPath):
            manager, venv = _build(
                cls,
                4,
                budget=BudgetConfig(period=50),
                allocator_rng=np.random.default_rng(SEED + 2),
            )
            # Tight budgets with a long period: the greedy repair loop and
            # overshoot penalty stay active for the whole run.
            manager.budgets[:] = 60.0
            traces = run_fleet(manager, venv, 8)
            results[cls.__name__] = (traces, manager)
        _assert_traces_equal(results["HierFleetTwig"][0], results["DictPath"][0])
        a, b = results["HierFleetTwig"][1], results["DictPath"][1]
        assert np.array_equal(a.budgets, b.budgets)
        assert (
            a.agent._rng.bit_generator.state == b.agent._rng.bit_generator.state
        )
        _assert_tree_equal(a.agent.state_dict(), b.agent.state_dict())


class TestMonitorBank:
    def _max_values(self):
        from repro.server.spec import ServerSpec

        return CounterCatalogue(ServerSpec()).max_values()

    def _random_readings(self, rng, max_values, counters):
        return np.array([rng.random(len(counters)) * 2.0 for _ in range(1)])[0]

    def test_rows_match_scalar_monitors(self):
        max_values = self._max_values()
        rows = 6
        bank = MonitorBank(max_values, rows, eta=4)
        monitors = [SystemMonitor(max_values, eta=4) for _ in range(rows)]
        counters = bank.counters
        rng = np.random.default_rng(3)
        for t in range(9):
            raw = rng.random((rows, len(counters))) * 1.5
            if t in (3, 6):  # degrade some rows with non-finite readings
                raw[1, 0] = np.nan
                raw[4, 2] = np.inf
            got = bank.observe_rows(raw)
            for r in range(rows):
                readings = dict(zip(counters, raw[r]))
                want = monitors[r].observe("svc", readings)
                assert np.array_equal(got[r], want), (t, r)
                assert bank.degraded[r] == ("svc" in monitors[r].degraded), (t, r)

    def test_state_dict_round_trip(self):
        max_values = self._max_values()
        bank = MonitorBank(max_values, 3, eta=5)
        rng = np.random.default_rng(11)
        for _ in range(4):
            bank.observe_rows(rng.random((3, len(bank.counters))))
        snapshot = bank.state_dict()
        probe = rng.random((3, len(bank.counters)))
        after = bank.observe_rows(probe.copy())

        fresh = MonitorBank(max_values, 3, eta=5)
        fresh.load_state_dict(snapshot)
        assert np.array_equal(fresh.observe_rows(probe.copy()), after)

    def test_load_rejects_bad_shapes(self):
        max_values = self._max_values()
        bank = MonitorBank(max_values, 3, eta=5)
        good = bank.state_dict()
        with pytest.raises(CheckpointError):
            bank.load_state_dict({**good, "history": good["history"][:2]})
        with pytest.raises(CheckpointError):
            bank.load_state_dict({**good, "counts": good["counts"] + 9})
        with pytest.raises(CheckpointError):
            bank.load_state_dict({"history": good["history"]})

    def test_load_monitor_rows_matches_scalar(self):
        # A legacy SystemMonitor tree loaded into bank rows reproduces the
        # scalar monitor's smoothed state exactly.
        max_values = self._max_values()
        monitor = SystemMonitor(max_values, eta=5)
        rng = np.random.default_rng(23)
        for _ in range(3):
            monitor.observe(
                "svc", dict(zip(monitor.counters, rng.random(len(monitor.counters))))
            )
        bank = MonitorBank(max_values, 2, eta=5)
        bank.load_monitor_rows(1, monitor.state_dict(), ["svc"])
        assert np.array_equal(bank.states()[1], monitor.state("svc"))

    def test_constructor_validation(self):
        max_values = self._max_values()
        with pytest.raises(ConfigurationError):
            MonitorBank(max_values, 0)
        with pytest.raises(ConfigurationError):
            MonitorBank(max_values, 2, eta=0)
        with pytest.raises(ConfigurationError):
            MonitorBank({}, 2)


class TestLegacyCheckpoint:
    def test_array_manager_loads_dict_checkpoint(self):
        # A checkpoint written by the dict reference restores the array
        # manager onto the identical trajectory.
        steps_before, steps_after, num_envs = 8, 6, 3
        dict_mgr, dict_venv = _build(DictFleetTwig, num_envs)
        run_fleet(dict_mgr, dict_venv, steps_before)
        legacy_tree = dict_mgr.state_dict()
        env_tree = dict_venv.state_dict()

        array_mgr, array_venv = _build(FleetTwig, num_envs)
        array_mgr.load_state_dict(legacy_tree)
        array_venv.load_state_dict(env_tree)
        array_traces = run_fleet(array_mgr, array_venv, steps_after)
        dict_traces = run_fleet(dict_mgr, dict_venv, steps_after)
        _assert_traces_equal(array_traces, dict_traces)
        _assert_managers_equivalent(array_mgr, dict_mgr)

    def test_torn_legacy_tree_never_half_loads(self):
        dict_mgr, dict_venv = _build(DictFleetTwig, 2)
        run_fleet(dict_mgr, dict_venv, 6)
        legacy_tree = dict_mgr.state_dict()

        array_mgr, _ = _build(FleetTwig, 2)
        before = array_mgr.state_dict()
        torn = dict(legacy_tree)
        torn["envs"] = dict(legacy_tree["envs"])
        torn["envs"]["0001"] = {"prev_actions": None}  # missing fields
        with pytest.raises(CheckpointError):
            array_mgr.load_state_dict(torn)
        _assert_tree_equal(array_mgr.state_dict(), before)

    def test_rejects_mismatched_env_count(self):
        dict_mgr, dict_venv = _build(DictFleetTwig, 2)
        run_fleet(dict_mgr, dict_venv, 4)
        array_mgr, _ = _build(FleetTwig, 3)
        with pytest.raises(CheckpointError):
            array_mgr.load_state_dict(dict_mgr.state_dict())

    def test_array_round_trip(self):
        # Array-format save/load onto a fresh manager: identical futures.
        num_envs = 3
        first_mgr, first_venv = _build(FleetTwig, num_envs)
        run_fleet(first_mgr, first_venv, 8)
        tree = first_mgr.state_dict()
        env_tree = first_venv.state_dict()

        second_mgr, second_venv = _build(FleetTwig, num_envs)
        second_mgr.load_state_dict(tree)
        second_venv.load_state_dict(env_tree)
        a = run_fleet(first_mgr, first_venv, 5)
        b = run_fleet(second_mgr, second_venv, 5)
        _assert_traces_equal(a, b)
