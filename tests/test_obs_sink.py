"""Tests for trace sinks: no-op overhead path, JSONL round-trip."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import make_event, validate_event
from repro.obs.sink import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    TraceSink,
    iter_trace,
    open_sink,
    read_trace,
)

from tests.test_obs_events import SAMPLE_PAYLOADS


def _sample_events():
    return [make_event(ev, i, **SAMPLE_PAYLOADS[ev]) for i, ev in enumerate(sorted(SAMPLE_PAYLOADS))]


def test_null_sink_is_disabled_and_swallows():
    assert NULL_SINK.enabled is False
    NULL_SINK.emit({"anything": 1})  # must be a harmless no-op
    NULL_SINK.close()


def test_disabled_guard_skips_emission_entirely():
    # The contract every emitter relies on: `if sink.enabled:` around emit.
    class Exploding(TraceSink):
        def emit(self, event):  # pragma: no cover - must never run
            raise AssertionError("emit called on a disabled sink")

    sink = Exploding()
    if sink.enabled:
        sink.emit({})


def test_memory_sink_collects_and_filters():
    sink = MemorySink(validate=True)
    assert sink.enabled
    for event in _sample_events():
        sink.emit(event)
    assert len(sink.events) == len(SAMPLE_PAYLOADS)
    assert [e["ev"] for e in sink.of_type("run_end")] == ["run_end"]


def test_memory_sink_validation_rejects_bad_event():
    sink = MemorySink(validate=True)
    with pytest.raises(ConfigurationError):
        sink.emit({"ev": "bogus", "v": 1, "t": 0})


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        for event in _sample_events():
            sink.emit(event)
        assert sink.count == len(SAMPLE_PAYLOADS)
    events = read_trace(path)
    assert events == _sample_events()
    for event in events:
        validate_event(event)
    assert list(iter_trace(path)) == events


def test_jsonl_lines_are_valid_json(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        for event in _sample_events():
            sink.emit(event)
    for line in path.read_text().splitlines():
        json.loads(line)


def test_jsonl_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "trace.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(make_event("run_end", 1, steps=1, wall_time_s=0.1))
    assert path.exists()


def test_read_trace_missing_file():
    with pytest.raises(ConfigurationError, match="not found"):
        read_trace("/nonexistent/trace.jsonl")


def test_read_trace_rejects_corrupt_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"ev":"run_end","v":1,"t":1}\nnot json\n')
    with pytest.raises(ConfigurationError, match="invalid JSON"):
        read_trace(path)


def test_open_sink_dispatch(tmp_path):
    assert open_sink(None) is NULL_SINK
    sink = open_sink(tmp_path / "t.jsonl")
    assert isinstance(sink, JsonlSink)
    sink.close()
