"""Guard against re-committing bytecode, caches, and build artifacts.

The seed tree shipped 66 tracked ``__pycache__/*.pyc`` files; this test
(part of the default ``make test`` path) fails if any tracked path ever
matches those patterns again, and checks that ``.gitignore`` keeps
ignoring them.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Substring/suffix patterns no tracked file may match.
FORBIDDEN_PARTS = ("__pycache__", ".pytest_cache", ".egg-info", ".hypothesis")
FORBIDDEN_SUFFIXES = (".pyc", ".pyo")

#: Patterns .gitignore must cover so the artifacts never show up as
#: untracked noise either.
REQUIRED_IGNORES = ("__pycache__/", ".pytest_cache/", "*.egg-info/", "build/", "dist/")


def _tracked_files():
    if not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    try:
        out = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if out.returncode != 0:
        pytest.skip(f"git ls-files failed: {out.stderr.strip()}")
    return out.stdout.splitlines()


def test_no_tracked_bytecode_or_build_artifacts():
    offenders = [
        path
        for path in _tracked_files()
        if any(part in path.split("/") or part in path for part in FORBIDDEN_PARTS)
        or path.endswith(FORBIDDEN_SUFFIXES)
    ]
    assert offenders == [], f"artifact files are tracked by git: {offenders[:10]}"


def test_gitignore_covers_artifact_patterns():
    gitignore = REPO_ROOT / ".gitignore"
    assert gitignore.exists(), "repository must have a root .gitignore"
    lines = {line.strip() for line in gitignore.read_text().splitlines()}
    missing = [pattern for pattern in REQUIRED_IGNORES if pattern not in lines]
    assert missing == [], f".gitignore is missing {missing}"


def test_pycod_pattern_covers_pyc():
    # *.py[cod] is the conventional spelling; make sure it (or *.pyc) is there.
    lines = (REPO_ROOT / ".gitignore").read_text()
    assert "*.py[cod]" in lines or "*.pyc" in lines
