"""Unit and property tests for the per-interval service dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.services.interference import SocketContention
from repro.services.profiles import get_profile
from repro.services.service import LCService


def _service(name="masstree", noise=0.0, seed=0):
    return LCService(
        get_profile(name),
        max_frequency_ghz=2.0,
        rng=np.random.default_rng(seed),
        latency_noise_std=noise,
    )


def test_latency_flat_then_knee():
    service = _service()
    low = service.step(200.0, cores=18, frequency_ghz=2.0).p99_ms
    service.reset()
    mid = service.step(1200.0, cores=18, frequency_ghz=2.0).p99_ms
    service.reset()
    high = service.step(2200.0, cores=18, frequency_ghz=2.0).p99_ms
    assert low <= mid <= high
    assert high > 3.0 * low  # the knee is sharp


def test_overload_latency_grows_over_time():
    """Sustained overload accumulates backlog -> runaway latency."""
    service = _service()
    latencies = [
        service.step(4000.0, cores=18, frequency_ghz=2.0).p99_ms for _ in range(5)
    ]
    assert latencies[-1] > latencies[0]
    assert service.backlog > 0


def test_backlog_drains_after_overload():
    service = _service()
    for _ in range(3):
        service.step(4000.0, cores=18, frequency_ghz=2.0)
    assert service.backlog > 0
    for _ in range(10):
        service.step(200.0, cores=18, frequency_ghz=2.0)
    assert service.backlog == 0.0


def test_backlog_capped():
    service = _service()
    for _ in range(100):
        result = service.step(50000.0, cores=1, frequency_ghz=1.2)
    assert result.backlog <= LCService.MAX_BACKLOG_SECONDS * result.capacity_rps + 1


def test_lower_frequency_increases_latency():
    fast = _service().step(1000.0, cores=12, frequency_ghz=2.0).p99_ms
    slow = _service().step(1000.0, cores=12, frequency_ghz=1.2).p99_ms
    assert slow > fast


def test_contention_inflates_latency():
    clean = _service().step(1000.0, cores=12, frequency_ghz=2.0).p99_ms
    contended = _service().step(
        1000.0,
        cores=12,
        frequency_ghz=2.0,
        contention=SocketContention(
            inflation=1.5, miss_inflation=1.3, membw_utilization=0.9, llc_overcommit=1.2
        ),
    ).p99_ms
    assert contended > clean


def test_result_ground_truth_fields():
    service = _service()
    result = service.step(1000.0, cores=12, frequency_ghz=1.8)
    assert result.throughput_rps == pytest.approx(1000.0)
    assert result.instructions == pytest.approx(
        1000.0 * get_profile("masstree").instr_per_req_m * 1e6
    )
    assert 0.0 < result.utilization <= 1.0
    assert result.membw_gbps > 0
    assert result.frequency_ghz == 1.8
    assert result.qos_target_ms == get_profile("masstree").qos_target_ms


def test_qos_met_and_tardiness():
    service = _service()
    result = service.step(100.0, cores=18, frequency_ghz=2.0)
    assert result.qos_met
    assert result.tardiness < 1.0


def test_step_validation():
    service = _service()
    with pytest.raises(ConfigurationError):
        service.step(-1.0, cores=4, frequency_ghz=2.0)
    with pytest.raises(ConfigurationError):
        service.step(1.0, cores=0, frequency_ghz=2.0)
    with pytest.raises(ConfigurationError):
        service.step(1.0, cores=4, frequency_ghz=2.0, interval_s=0.0)


def test_latency_noise_is_multiplicative_lognormal():
    noisy = LCService(
        get_profile("masstree"),
        max_frequency_ghz=2.0,
        rng=np.random.default_rng(3),
        latency_noise_std=0.1,
    )
    values = [noisy.step(500.0, cores=18, frequency_ghz=2.0).p99_ms for _ in range(200)]
    assert np.std(values) > 0
    ratio = max(values) / min(values)
    assert 1.1 < ratio < 3.0


@settings(max_examples=40, deadline=None)
@given(
    arrival=st.floats(min_value=10.0, max_value=2000.0),
    cores=st.integers(min_value=2, max_value=18),
    freq=st.sampled_from([1.2, 1.5, 1.8, 2.0]),
)
def test_latency_positive_and_finite_when_stable(arrival, cores, freq):
    service = _service()
    result = service.step(arrival, cores=cores, frequency_ghz=freq)
    assert result.p99_ms > 0
    assert np.isfinite(result.p99_ms)


@settings(max_examples=30, deadline=None)
@given(
    arrival=st.floats(min_value=100.0, max_value=2000.0),
    cores=st.integers(min_value=4, max_value=17),
)
def test_more_cores_never_hurt(arrival, cores):
    smaller = _service().step(arrival, cores=cores, frequency_ghz=2.0).p99_ms
    bigger = _service().step(arrival, cores=cores + 1, frequency_ghz=2.0).p99_ms
    assert bigger <= smaller * 1.001
