"""NodeRegistry: clock-driven sweeps, epoch guards, balancer feedback."""

import numpy as np
import pytest

from repro.ctrl.lifecycle import DEGRADED, HEALTHY, OFFLINE, REGISTERED
from repro.ctrl.registry import ManualClock, NodeRegistry
from repro.errors import ConfigurationError, ControlPlaneError
from repro.obs.sink import MemorySink


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def registry(clock):
    return NodeRegistry(
        heartbeat_interval_s=1.0, degraded_after=1, offline_after=3, clock=clock
    )


def test_manual_clock_advances_and_rejects_rewind(clock):
    assert clock() == 0.0
    assert clock.advance(2.5) == 2.5
    assert clock() == 2.5
    with pytest.raises(ConfigurationError):
        clock.advance(-0.1)


def test_register_heartbeat_happy_path(registry, clock):
    record = registry.register("n0", "127.0.0.1:9", ["masstree", "xapian"])
    assert record.state == REGISTERED
    assert record.epoch == 1
    assert registry.heartbeat("n0", 1) == HEALTHY
    clock.advance(0.5)
    registry.sweep()
    assert registry.get("n0").state == HEALTHY  # deadline not yet due


def test_register_validates_inputs(registry):
    with pytest.raises(ControlPlaneError):
        registry.register("", "addr", ["svc"])
    with pytest.raises(ControlPlaneError):
        registry.register("n0", "addr", [])


def test_heartbeat_unknown_node_rejected(registry):
    with pytest.raises(ControlPlaneError):
        registry.heartbeat("ghost", 1)


def test_stale_epoch_rejected_after_restart(registry):
    registry.register("n0", "addr", ["svc"])
    fresh = registry.register("n0", "addr2", ["svc"])  # restarted node
    with pytest.raises(ControlPlaneError):
        registry.heartbeat("n0", 1)
    assert registry.heartbeat("n0", fresh.epoch) == HEALTHY


def test_missed_deadlines_escalate_step_by_step(registry, clock):
    record = registry.register("n0", "addr", ["svc"])
    registry.heartbeat("n0", record.epoch)
    clock.advance(1.5)  # one deadline expired
    assert registry.sweep() == ["n0"]
    assert registry.get("n0").state == DEGRADED
    clock.advance(1.0)  # second missed tick: still below offline_after=3
    registry.sweep()
    assert registry.get("n0").state == DEGRADED
    clock.advance(1.0)  # third missed tick: offline
    assert registry.sweep() == ["n0"]
    assert registry.get("n0").state == OFFLINE
    # Offline nodes stop accruing misses (no deadline event applies).
    missed = registry.get("n0").missed
    clock.advance(10.0)
    registry.sweep()
    assert registry.get("n0").missed == missed


def test_heartbeat_recovers_degraded_and_offline(registry, clock):
    record = registry.register("n0", "addr", ["svc"])
    registry.heartbeat("n0", record.epoch)
    clock.advance(10.0)
    registry.sweep()
    assert registry.get("n0").state == OFFLINE
    assert registry.heartbeat("n0", record.epoch) == HEALTHY
    assert registry.get("n0").missed == 0
    # Deadline was re-armed from now: no immediate re-escalation.
    assert registry.sweep() == []


def test_deadlines_are_monotonic_under_heartbeat_bursts(registry, clock):
    record = registry.register("n0", "addr", ["svc"])
    registry.heartbeat("n0", record.epoch)
    deadline = registry.get("n0").deadline
    # Burst of heartbeats at the same instant must not rewind the deadline.
    for _ in range(5):
        registry.heartbeat("n0", record.epoch)
    assert registry.get("n0").deadline == deadline
    clock.advance(0.4)
    registry.heartbeat("n0", record.epoch)
    assert registry.get("n0").deadline == pytest.approx(deadline + 0.4)


def test_version_bumps_on_every_transition(registry, clock):
    v0 = registry.version
    record = registry.register("n0", "addr", ["svc"])
    v1 = registry.version
    assert v1 > v0
    registry.heartbeat("n0", record.epoch)  # registered -> healthy
    v2 = registry.version
    assert v2 > v1
    registry.heartbeat("n0", record.epoch)  # healthy -> healthy: no-op
    assert registry.version == v2
    clock.advance(5.0)
    registry.sweep()  # healthy -> degraded -> offline
    assert registry.version >= v2 + 2


def test_heartbeat_stores_loads_and_policy_version(registry):
    record = registry.register("n0", "addr", ["masstree"])
    registry.heartbeat(
        "n0",
        record.epoch,
        loads={"masstree": {"arrival_rps": 120.0, "utilization": 0.7,
                            "backlog": 3.0}},
        policy_version=4,
    )
    stored = registry.get("n0")
    assert stored.loads["masstree"]["arrival_rps"] == 120.0
    assert stored.policy_version == 4


def test_loads_exposes_degraded_mask_and_excludes_offline(registry, clock):
    services = ["masstree", "xapian"]
    epochs = {}
    for node in ("a", "b", "c"):
        epochs[node] = registry.register(node, f"{node}:1", services).epoch
        registry.heartbeat(
            node, epochs[node],
            loads={"masstree": {"arrival_rps": 100.0, "utilization": 0.5,
                                "backlog": 1.0}},
        )
    # b misses one deadline (degraded), c misses enough to go offline.
    clock.advance(1.5)
    registry.heartbeat("a", epochs["a"])
    registry.sweep()
    assert registry.get("b").state == DEGRADED
    clock.advance(2.0)
    registry.heartbeat("a", epochs["a"])
    registry.heartbeat("b", epochs["b"])  # recover b ...
    clock.advance(1.5)
    registry.heartbeat("a", epochs["a"])
    registry.sweep()  # ... then let b degrade again while c goes offline
    assert registry.get("b").state == DEGRADED
    assert registry.get("c").state == OFFLINE

    node_ids, loads = registry.loads(services)
    assert node_ids == ["a", "b"]  # offline c dropped from the topology
    assert loads.arrival_rps.shape == (2, 2)
    np.testing.assert_array_equal(loads.degraded, [False, True])
    assert loads.arrival_rps[0, 0] == 100.0
    assert loads.arrival_rps[0, 1] == 0.0  # xapian never reported


def test_status_counts_states(registry, clock):
    registry.register("n0", "a:1", ["svc"])
    record = registry.register("n1", "a:2", ["svc"])
    registry.heartbeat("n1", record.epoch)
    status = registry.status()
    assert status["counts"]["registered"] == 1
    assert status["counts"]["healthy"] == 1
    assert status["counts"]["offline"] == 0
    assert {n["node_id"] for n in status["nodes"]} == {"n0", "n1"}
    assert status["heartbeat_interval_s"] == 1.0
    import json

    json.dumps(status)  # must be JSON-serialisable for the status RPC


def test_events_validate_against_schema(clock):
    trace = MemorySink(validate=True)
    registry = NodeRegistry(clock=clock, trace=trace)
    record = registry.register("n0", "addr", ["svc"])
    registry.heartbeat("n0", record.epoch)
    clock.advance(10.0)
    registry.sweep()
    registry.deregister("n0")
    kinds = {e["ev"] for e in trace.events}
    assert kinds == {"node_registered", "node_state_change", "heartbeat_missed"}
