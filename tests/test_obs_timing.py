"""Tests for the timing registry and its histograms."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.timing import Timing, TimingRegistry


def test_measure_records_durations():
    registry = TimingRegistry()
    for _ in range(5):
        with registry.measure("env.step"):
            pass
    timing = registry.get("env.step")
    assert timing.count == 5
    assert timing.total_s >= 0.0


def test_measure_records_on_exception():
    registry = TimingRegistry()
    with pytest.raises(ValueError):
        with registry.measure("env.step"):
            raise ValueError("boom")
    assert registry.get("env.step").count == 1


def test_summary_statistics():
    timing = Timing("x")
    for d in (0.001, 0.002, 0.003, 0.004):
        timing.add(d)
    s = timing.summary()
    assert s["count"] == 4
    assert s["total_s"] == pytest.approx(0.010)
    assert s["mean_ms"] == pytest.approx(2.5)
    assert s["p50_ms"] == pytest.approx(2.5)
    assert s["max_ms"] == pytest.approx(4.0)
    assert s["p50_ms"] <= s["p99_ms"] <= s["max_ms"]


def test_empty_summary_and_percentile_guard():
    timing = Timing("x")
    assert timing.summary() == {"count": 0, "total_s": 0.0}
    with pytest.raises(ConfigurationError):
        timing.percentile_ms(50)


def test_registry_summary_and_table():
    registry = TimingRegistry()
    with registry.measure("agent.act"):
        pass
    with registry.measure("env.step"):
        pass
    summary = registry.summary()
    assert list(summary) == ["agent.act", "env.step"]  # sorted
    table = registry.format_table()
    assert "agent.act" in table and "env.step" in table
    assert "p99 ms" in table


def test_empty_registry_table():
    assert "no timings" in TimingRegistry().format_table()
