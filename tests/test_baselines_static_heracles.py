"""Unit and behavioural tests for the Static and Heracles baselines."""

import numpy as np
import pytest

from repro.baselines import HeraclesManager, StaticManager
from repro.errors import ConfigurationError
from repro.experiments.runner import run_manager
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _env(names, fractions, seed=7):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    gens = {
        n: ConstantLoad(get_profile(n).max_load_rps, f, rng=np.random.default_rng(seed + i))
        for i, (n, f) in enumerate(zip(names, fractions))
    }
    return ColocationEnvironment(
        EnvironmentConfig(spec=spec), profiles, gens, np.random.default_rng(seed)
    )


# --------------------------------------------------------------------- #
# Static
# --------------------------------------------------------------------- #
def test_static_uses_all_cores_max_dvfs(spec):
    manager = StaticManager(["masstree"], spec=spec)
    assignments = manager.initial_assignments()
    assert set(assignments["masstree"].cores) == set(spec.socket_core_ids(1))
    assert assignments["masstree"].freq_index == len(spec.dvfs) - 1


def test_static_never_changes():
    manager = StaticManager(["masstree"], spec=ServerSpec())
    env = _env(["masstree"], [0.5])
    trace = run_manager(manager, env, 20)
    assert len(set(trace.services["masstree"].cores)) == 1
    assert env.machine.migrations("masstree") == 18  # initial placement only


def test_static_meets_qos_at_high_load():
    trace = run_manager(StaticManager(["masstree"]), _env(["masstree"], [0.8]), 60)
    assert trace.qos_guarantee("masstree") > 95.0


def test_static_requires_services():
    with pytest.raises(ConfigurationError):
        StaticManager([])


# --------------------------------------------------------------------- #
# Heracles
# --------------------------------------------------------------------- #
def test_heracles_sheds_cores_at_low_load():
    profile = get_profile("masstree")
    manager = HeraclesManager(profile, spec=ServerSpec())
    trace = run_manager(manager, _env(["masstree"], [0.2]), 300)
    # Heracles walks the allocation down until latency nears 80% of the
    # target (it may bounce back to 18 after boundary violations trigger
    # the 5-minute lockout, which is exactly the paper's criticism).
    assert min(trace.services["masstree"].cores) < 12.0


def test_heracles_lockout_on_violation():
    """A QoS violation at a main-controller poll grants all resources."""
    profile = get_profile("masstree")
    manager = HeraclesManager(profile, spec=ServerSpec(), qos_target_ms=0.001)
    env = _env(["masstree"], [0.5])
    assignments = manager.initial_assignments()
    for _ in range(manager.main_poll_every + 1):
        result = env.step(assignments)
        assignments = manager.update(result)
    assert manager.cores == 18
    assert manager.freq_index == len(ServerSpec().dvfs) - 1
    assert manager._lockout_until > manager.step_count


def test_heracles_keeps_dvfs_high_until_power_cap():
    profile = get_profile("img-dnn")
    manager = HeraclesManager(profile, spec=ServerSpec())
    trace = run_manager(manager, _env(["img-dnn"], [0.5]), 120)
    freqs = trace.services["img-dnn"].frequency_ghz[-60:]
    assert np.mean(freqs) > 1.8  # paper: Heracles pins DVFS high


def test_heracles_poll_period_validation():
    with pytest.raises(ConfigurationError):
        HeraclesManager(get_profile("masstree"), main_poll_every=0)


def test_heracles_more_energy_than_needed():
    """The paper's observation: Heracles over-allocates despite QoS slack."""
    profile = get_profile("masstree")
    heracles_trace = run_manager(
        HeraclesManager(profile, spec=ServerSpec()), _env(["masstree"], [0.5]), 200
    )
    assert heracles_trace.mean_cores("masstree", 100) > 10.0


# --------------------------------------------------------------------- #
# Oracle
# --------------------------------------------------------------------- #
def test_oracle_table_monotone_capacity():
    """Higher load buckets never get less capacity than lower ones."""
    from repro.baselines import OracleManager
    from repro.services.profiles import get_profile

    oracle = OracleManager(get_profile("masstree"), spec=ServerSpec())
    spec = ServerSpec()
    capacities = [
        get_profile("masstree").capacity_rps(
            a.num_cores, spec.dvfs[a.freq_index], spec.dvfs.max_ghz
        )
        for a in oracle.table
    ]
    for low, high in zip(capacities, capacities[1:]):
        assert high >= low * 0.95


def test_oracle_beats_static_and_meets_qos():
    from repro.baselines import OracleManager, StaticManager
    from repro.services.profiles import get_profile

    profile = get_profile("masstree")
    static = run_manager(StaticManager(["masstree"]), _env(["masstree"], [0.5]), 150)
    oracle = run_manager(
        OracleManager(profile, spec=ServerSpec()), _env(["masstree"], [0.5]), 150
    )
    assert oracle.qos_guarantee("masstree", 100) > 95.0
    assert oracle.mean_power_w(100) < static.mean_power_w(100)


def test_oracle_validation():
    from repro.baselines import OracleManager
    from repro.errors import ConfigurationError
    from repro.services.profiles import get_profile

    with pytest.raises(ConfigurationError):
        OracleManager(get_profile("masstree"), safety=0.0)
    with pytest.raises(ConfigurationError):
        OracleManager(get_profile("masstree"), load_buckets=0)
