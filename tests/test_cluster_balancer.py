"""Balancer invariants: conservation, determinism, policy behaviour."""

import numpy as np
import pytest

from repro.cluster.balancer import (
    BALANCER_POLICIES,
    LeastLoadedBalancer,
    NodeLoads,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    ShardedByKeyBalancer,
    make_balancer,
)
from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError

POLICIES = sorted(BALANCER_POLICIES)


def _topology(num_nodes=7, regions=("r0", "r1")):
    return ClusterTopology(num_nodes, regions)


def _demand(topology, services=3, level=900.0):
    rng = np.random.default_rng(0)
    return level * (1.0 + rng.random((topology.num_regions, services)))


def _loads(topology, services=3, seed=1):
    rng = np.random.default_rng(seed)
    n = topology.num_nodes
    return NodeLoads(
        arrival_rps=200.0 * rng.random((n, services)),
        utilization=rng.random((n, services)),
        backlog=np.where(rng.random((n, services)) > 0.7, 50.0, 0.0),
    )


class TestConservation:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_without_feedback(self, policy):
        topology = _topology()
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(0, demand)
        assert rates.shape == (topology.num_nodes, 3)
        assert (rates >= 0).all()
        # per (region, service): node rates sum to the regional demand
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_with_feedback(self, policy):
        topology = _topology(num_nodes=9, regions=("r0", "r1", "r2"))
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(3, demand, _loads(topology))
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_node_gets_everything(self, policy):
        topology = _topology(num_nodes=1, regions=("r0",))
        balancer = make_balancer(policy, topology)
        demand = _demand(topology)
        np.testing.assert_allclose(balancer.assign(0, demand)[0], demand[0])


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fixed_seed_fixed_assignment(self, policy):
        topology = _topology()
        demand = _demand(topology)
        loads = _loads(topology)
        a = make_balancer(policy, topology, seed=42)
        b = make_balancer(policy, topology, seed=42)
        for t in range(8):
            np.testing.assert_array_equal(
                a.assign(t, demand, loads), b.assign(t, demand, loads)
            )

    def test_power_of_two_seed_changes_assignment(self):
        topology = _topology()
        demand = _demand(topology)
        a = make_balancer("power_of_two", topology, seed=1).assign(0, demand)
        b = make_balancer("power_of_two", topology, seed=2).assign(0, demand)
        assert not np.array_equal(a, b)


class TestRoundRobin:
    def test_cursor_rotates_remainder_chunks(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=4)  # remainder 1
        demand = np.array([[300.0]])
        first = balancer.assign(0, demand)
        second = balancer.assign(1, demand)
        assert not np.array_equal(first, second)  # extra chunk moved on
        # over 3 intervals every node got the extra chunk exactly once
        total = first + second + balancer.assign(2, demand)
        np.testing.assert_allclose(total, total[0, 0])

    def test_even_split_when_granularity_divides(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=64)
        rates = balancer.assign(0, np.array([[400.0, 800.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)
        np.testing.assert_allclose(rates[:, 1], 200.0)

    def test_state_roundtrip(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        demand = np.array([[300.0]])
        a = RoundRobinBalancer(topology, granularity=4)
        a.assign(0, demand)
        saved = a.state_dict()
        b = RoundRobinBalancer(topology, granularity=4)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestLeastLoaded:
    def test_loaded_node_receives_less(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = LeastLoadedBalancer(topology)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[0.95], [0.2], [0.2], [0.2]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1, 0]

    def test_uniform_without_feedback(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        rates = LeastLoadedBalancer(topology).assign(0, np.array([[400.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)

    def test_backlog_raises_pressure(self):
        loads = NodeLoads(
            arrival_rps=np.full((2, 1), 100.0),
            utilization=np.full((2, 1), 0.5),
            backlog=np.array([[80.0], [0.0]]),
        )
        pressure = loads.pressure()
        assert pressure[0] > pressure[1]


class TestPowerOfTwo:
    def test_prefers_unloaded_nodes(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = PowerOfTwoBalancer(topology, seed=3, granularity=256)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[1.0], [0.1], [0.1], [0.1]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1:, 0].min()

    def test_state_roundtrip_resumes_rng(self):
        topology = _topology()
        demand = _demand(topology)
        a = PowerOfTwoBalancer(topology, seed=7)
        a.assign(0, demand)
        saved = a.state_dict()
        b = PowerOfTwoBalancer(topology, seed=99)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestShardedByKey:
    def test_assignment_ignores_time_and_load(self):
        topology = _topology()
        balancer = ShardedByKeyBalancer(topology, seed=5)
        demand = _demand(topology)
        first = balancer.assign(0, demand)
        np.testing.assert_array_equal(first, balancer.assign(50, demand))
        np.testing.assert_array_equal(
            first, balancer.assign(51, demand, _loads(topology))
        )

    def test_skew_concentrates_traffic(self):
        topology = _topology(num_nodes=8, regions=("r0",))
        demand = np.array([[800.0]])
        flat = ShardedByKeyBalancer(topology, seed=5, skew=0.0).assign(0, demand)
        skewed = ShardedByKeyBalancer(topology, seed=5, skew=1.2).assign(0, demand)
        assert skewed.max() > flat.max()


class TestInterface:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_balancer("random_spray", _topology())

    def test_wrong_demand_shape_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.zeros((5, 2)))  # 5 regions, topology has 2

    def test_negative_demand_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.full((2, 1), -1.0))
