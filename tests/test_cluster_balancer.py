"""Balancer invariants: conservation, determinism, policy behaviour."""

import numpy as np
import pytest

from repro.cluster.balancer import (
    BALANCER_POLICIES,
    LeastLoadedBalancer,
    NodeLoads,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    ShardedByKeyBalancer,
    make_balancer,
)
from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError

POLICIES = sorted(BALANCER_POLICIES)


def _topology(num_nodes=7, regions=("r0", "r1")):
    return ClusterTopology(num_nodes, regions)


def _demand(topology, services=3, level=900.0):
    rng = np.random.default_rng(0)
    return level * (1.0 + rng.random((topology.num_regions, services)))


def _loads(topology, services=3, seed=1):
    rng = np.random.default_rng(seed)
    n = topology.num_nodes
    return NodeLoads(
        arrival_rps=200.0 * rng.random((n, services)),
        utilization=rng.random((n, services)),
        backlog=np.where(rng.random((n, services)) > 0.7, 50.0, 0.0),
    )


class TestConservation:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_without_feedback(self, policy):
        topology = _topology()
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(0, demand)
        assert rates.shape == (topology.num_nodes, 3)
        assert (rates >= 0).all()
        # per (region, service): node rates sum to the regional demand
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_with_feedback(self, policy):
        topology = _topology(num_nodes=9, regions=("r0", "r1", "r2"))
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(3, demand, _loads(topology))
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_node_gets_everything(self, policy):
        topology = _topology(num_nodes=1, regions=("r0",))
        balancer = make_balancer(policy, topology)
        demand = _demand(topology)
        np.testing.assert_allclose(balancer.assign(0, demand)[0], demand[0])


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fixed_seed_fixed_assignment(self, policy):
        topology = _topology()
        demand = _demand(topology)
        loads = _loads(topology)
        a = make_balancer(policy, topology, seed=42)
        b = make_balancer(policy, topology, seed=42)
        for t in range(8):
            np.testing.assert_array_equal(
                a.assign(t, demand, loads), b.assign(t, demand, loads)
            )

    def test_power_of_two_seed_changes_assignment(self):
        topology = _topology()
        demand = _demand(topology)
        a = make_balancer("power_of_two", topology, seed=1).assign(0, demand)
        b = make_balancer("power_of_two", topology, seed=2).assign(0, demand)
        assert not np.array_equal(a, b)


class TestRoundRobin:
    def test_cursor_rotates_remainder_chunks(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=4)  # remainder 1
        demand = np.array([[300.0]])
        first = balancer.assign(0, demand)
        second = balancer.assign(1, demand)
        assert not np.array_equal(first, second)  # extra chunk moved on
        # over 3 intervals every node got the extra chunk exactly once
        total = first + second + balancer.assign(2, demand)
        np.testing.assert_allclose(total, total[0, 0])

    def test_even_split_when_granularity_divides(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=64)
        rates = balancer.assign(0, np.array([[400.0, 800.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)
        np.testing.assert_allclose(rates[:, 1], 200.0)

    def test_state_roundtrip(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        demand = np.array([[300.0]])
        a = RoundRobinBalancer(topology, granularity=4)
        a.assign(0, demand)
        saved = a.state_dict()
        b = RoundRobinBalancer(topology, granularity=4)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestLeastLoaded:
    def test_loaded_node_receives_less(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = LeastLoadedBalancer(topology)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[0.95], [0.2], [0.2], [0.2]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1, 0]

    def test_uniform_without_feedback(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        rates = LeastLoadedBalancer(topology).assign(0, np.array([[400.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)

    def test_backlog_raises_pressure(self):
        loads = NodeLoads(
            arrival_rps=np.full((2, 1), 100.0),
            utilization=np.full((2, 1), 0.5),
            backlog=np.array([[80.0], [0.0]]),
        )
        pressure = loads.pressure()
        assert pressure[0] > pressure[1]


class TestPowerOfTwo:
    def test_prefers_unloaded_nodes(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = PowerOfTwoBalancer(topology, seed=3, granularity=256)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[1.0], [0.1], [0.1], [0.1]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1:, 0].min()

    def test_state_roundtrip_resumes_rng(self):
        topology = _topology()
        demand = _demand(topology)
        a = PowerOfTwoBalancer(topology, seed=7)
        a.assign(0, demand)
        saved = a.state_dict()
        b = PowerOfTwoBalancer(topology, seed=99)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestShardedByKey:
    def test_assignment_ignores_time_and_load(self):
        topology = _topology()
        balancer = ShardedByKeyBalancer(topology, seed=5)
        demand = _demand(topology)
        first = balancer.assign(0, demand)
        np.testing.assert_array_equal(first, balancer.assign(50, demand))
        np.testing.assert_array_equal(
            first, balancer.assign(51, demand, _loads(topology))
        )

    def test_skew_concentrates_traffic(self):
        topology = _topology(num_nodes=8, regions=("r0",))
        demand = np.array([[800.0]])
        flat = ShardedByKeyBalancer(topology, seed=5, skew=0.0).assign(0, demand)
        skewed = ShardedByKeyBalancer(topology, seed=5, skew=1.2).assign(0, demand)
        assert skewed.max() > flat.max()


class TestAllSaturated:
    """Regression: all-saturated feedback must stay finite and conserving."""

    def _saturated_loads(self, n, services=2):
        # Every node fully saturated with a deep backlog: pressure ~2.0,
        # headroom pinned to the floor on every node.
        return NodeLoads(
            arrival_rps=np.full((n, services), 100.0),
            utilization=np.ones((n, services)),
            backlog=np.full((n, services), 500.0),
        )

    @pytest.mark.parametrize("policy", ("least_loaded", "power_of_two"))
    def test_all_saturated_is_finite_and_conserving(self, policy):
        topology = _topology(num_nodes=6, regions=("r0", "r1"))
        balancer = make_balancer(policy, topology, seed=3)
        demand = _demand(topology, services=2)
        rates = balancer.assign(1, demand, self._saturated_loads(6))
        assert np.isfinite(rates).all()
        assert (rates >= 0).all()
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    def test_least_loaded_underflowed_headroom_splits_uniformly(self):
        # Drive the headroom sum below any meaningful scale via a tiny
        # floor: the fallback must be a uniform split, not NaN shares.
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = LeastLoadedBalancer(topology, floor=1e-300)
        shares = balancer._shares(0, 1, 4, np.array([400.0]), np.full(4, 2.0) * 1e300)
        assert np.isfinite(shares).all()
        np.testing.assert_allclose(shares.sum(axis=0), 1.0, atol=1e-9)
        np.testing.assert_allclose(shares[:, 0], 0.25)

    def test_least_loaded_nan_pressure_is_finite(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = LeastLoadedBalancer(topology)
        shares = balancer._shares(
            0, 1, 3, np.array([300.0]), np.array([np.nan, 0.5, np.nan])
        )
        assert np.isfinite(shares).all()
        np.testing.assert_allclose(shares.sum(axis=0), 1.0, atol=1e-9)

    def test_power_of_two_nan_pressure_loses_ties(self):
        topology = _topology(num_nodes=2, regions=("r0",))
        balancer = PowerOfTwoBalancer(topology, seed=1, granularity=256)
        loads = NodeLoads(
            arrival_rps=np.full((2, 1), 100.0),
            utilization=np.array([[np.nan], [0.5]]),
            backlog=np.zeros((2, 1)),
        )
        rates = balancer.assign(1, np.array([[200.0]]), loads)
        assert np.isfinite(rates).all()
        # The NaN-telemetry node reads as saturated: it only receives
        # chunks when both choices land on it.
        assert rates[0, 0] < rates[1, 0]


class TestDegradedShedding:
    def _loads_with_degraded(self, n, degraded, services=2):
        return NodeLoads(
            arrival_rps=np.full((n, services), 100.0),
            utilization=np.full((n, services), 0.5),
            backlog=np.zeros((n, services)),
            degraded=np.asarray(degraded, dtype=bool),
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_degraded_node_sheds_all_load(self, policy):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[400.0, 800.0]])
        loads = self._loads_with_degraded(4, [True, False, False, False])
        rates = balancer.assign(1, demand, loads)
        np.testing.assert_allclose(rates[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(rates.sum(axis=0), demand[0], atol=1e-9)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_live_node_absorbs_region(self, policy):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[300.0]])
        loads = self._loads_with_degraded(3, [True, False, True], services=1)
        rates = balancer.assign(1, demand, loads)
        np.testing.assert_allclose(rates[1, 0], 300.0, atol=1e-9)
        np.testing.assert_allclose(rates[[0, 2], 0], 0.0, atol=1e-12)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_degraded_keeps_conservation(self, policy):
        # Nowhere to shed to: shares must be kept rather than zeroed.
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[400.0, 100.0]])
        loads = self._loads_with_degraded(4, [True] * 4)
        rates = balancer.assign(1, demand, loads)
        assert np.isfinite(rates).all()
        np.testing.assert_allclose(rates.sum(axis=0), demand[0], atol=1e-9)

    def test_uniform_fallback_when_live_shares_collapse(self):
        # A column whose live shares are all zero falls back to a uniform
        # split over live nodes.
        from repro.cluster.balancer import _shed_degraded

        shares = np.array([[1.0], [0.0], [0.0]])
        shed = _shed_degraded(shares, np.array([True, False, False]))
        np.testing.assert_allclose(shed[:, 0], [0.0, 0.5, 0.5])


class TestInterface:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_balancer("random_spray", _topology())

    def test_wrong_demand_shape_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.zeros((5, 2)))  # 5 regions, topology has 2

    def test_negative_demand_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.full((2, 1), -1.0))
