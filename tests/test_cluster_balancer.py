"""Balancer invariants: conservation, determinism, policy behaviour."""

import numpy as np
import pytest

from repro.cluster.balancer import (
    BALANCER_POLICIES,
    LeastLoadedBalancer,
    NodeLoads,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    ShardedByKeyBalancer,
    make_balancer,
)
from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError

POLICIES = sorted(BALANCER_POLICIES)


def _topology(num_nodes=7, regions=("r0", "r1")):
    return ClusterTopology(num_nodes, regions)


def _demand(topology, services=3, level=900.0):
    rng = np.random.default_rng(0)
    return level * (1.0 + rng.random((topology.num_regions, services)))


def _loads(topology, services=3, seed=1):
    rng = np.random.default_rng(seed)
    n = topology.num_nodes
    return NodeLoads(
        arrival_rps=200.0 * rng.random((n, services)),
        utilization=rng.random((n, services)),
        backlog=np.where(rng.random((n, services)) > 0.7, 50.0, 0.0),
    )


class TestConservation:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_without_feedback(self, policy):
        topology = _topology()
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(0, demand)
        assert rates.shape == (topology.num_nodes, 3)
        assert (rates >= 0).all()
        # per (region, service): node rates sum to the regional demand
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_traffic_conserved_with_feedback(self, policy):
        topology = _topology(num_nodes=9, regions=("r0", "r1", "r2"))
        balancer = make_balancer(policy, topology, seed=5)
        demand = _demand(topology)
        rates = balancer.assign(3, demand, _loads(topology))
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_node_gets_everything(self, policy):
        topology = _topology(num_nodes=1, regions=("r0",))
        balancer = make_balancer(policy, topology)
        demand = _demand(topology)
        np.testing.assert_allclose(balancer.assign(0, demand)[0], demand[0])


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fixed_seed_fixed_assignment(self, policy):
        topology = _topology()
        demand = _demand(topology)
        loads = _loads(topology)
        a = make_balancer(policy, topology, seed=42)
        b = make_balancer(policy, topology, seed=42)
        for t in range(8):
            np.testing.assert_array_equal(
                a.assign(t, demand, loads), b.assign(t, demand, loads)
            )

    def test_power_of_two_seed_changes_assignment(self):
        topology = _topology()
        demand = _demand(topology)
        a = make_balancer("power_of_two", topology, seed=1).assign(0, demand)
        b = make_balancer("power_of_two", topology, seed=2).assign(0, demand)
        assert not np.array_equal(a, b)


class TestRoundRobin:
    def test_cursor_rotates_remainder_chunks(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=4)  # remainder 1
        demand = np.array([[300.0]])
        first = balancer.assign(0, demand)
        second = balancer.assign(1, demand)
        assert not np.array_equal(first, second)  # extra chunk moved on
        # over 3 intervals every node got the extra chunk exactly once
        total = first + second + balancer.assign(2, demand)
        np.testing.assert_allclose(total, total[0, 0])

    def test_even_split_when_granularity_divides(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = RoundRobinBalancer(topology, granularity=64)
        rates = balancer.assign(0, np.array([[400.0, 800.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)
        np.testing.assert_allclose(rates[:, 1], 200.0)

    def test_state_roundtrip(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        demand = np.array([[300.0]])
        a = RoundRobinBalancer(topology, granularity=4)
        a.assign(0, demand)
        saved = a.state_dict()
        b = RoundRobinBalancer(topology, granularity=4)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestLeastLoaded:
    def test_loaded_node_receives_less(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = LeastLoadedBalancer(topology)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[0.95], [0.2], [0.2], [0.2]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1, 0]

    def test_uniform_without_feedback(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        rates = LeastLoadedBalancer(topology).assign(0, np.array([[400.0]]))
        np.testing.assert_allclose(rates[:, 0], 100.0)

    def test_backlog_raises_pressure(self):
        loads = NodeLoads(
            arrival_rps=np.full((2, 1), 100.0),
            utilization=np.full((2, 1), 0.5),
            backlog=np.array([[80.0], [0.0]]),
        )
        pressure = loads.pressure()
        assert pressure[0] > pressure[1]


class TestPowerOfTwo:
    def test_prefers_unloaded_nodes(self):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = PowerOfTwoBalancer(topology, seed=3, granularity=256)
        loads = NodeLoads(
            arrival_rps=np.full((4, 1), 100.0),
            utilization=np.array([[1.0], [0.1], [0.1], [0.1]]),
            backlog=np.zeros((4, 1)),
        )
        rates = balancer.assign(1, np.array([[400.0]]), loads)
        assert rates[0, 0] < rates[1:, 0].min()

    def test_state_roundtrip_resumes_rng(self):
        topology = _topology()
        demand = _demand(topology)
        a = PowerOfTwoBalancer(topology, seed=7)
        a.assign(0, demand)
        saved = a.state_dict()
        b = PowerOfTwoBalancer(topology, seed=99)
        b.load_state_dict(saved)
        np.testing.assert_array_equal(a.assign(1, demand), b.assign(1, demand))


class TestShardedByKey:
    def test_assignment_ignores_time_and_load(self):
        topology = _topology()
        balancer = ShardedByKeyBalancer(topology, seed=5)
        demand = _demand(topology)
        first = balancer.assign(0, demand)
        np.testing.assert_array_equal(first, balancer.assign(50, demand))
        np.testing.assert_array_equal(
            first, balancer.assign(51, demand, _loads(topology))
        )

    def test_skew_concentrates_traffic(self):
        topology = _topology(num_nodes=8, regions=("r0",))
        demand = np.array([[800.0]])
        flat = ShardedByKeyBalancer(topology, seed=5, skew=0.0).assign(0, demand)
        skewed = ShardedByKeyBalancer(topology, seed=5, skew=1.2).assign(0, demand)
        assert skewed.max() > flat.max()


class TestAllSaturated:
    """Regression: all-saturated feedback must stay finite and conserving."""

    def _saturated_loads(self, n, services=2):
        # Every node fully saturated with a deep backlog: pressure ~2.0,
        # headroom pinned to the floor on every node.
        return NodeLoads(
            arrival_rps=np.full((n, services), 100.0),
            utilization=np.ones((n, services)),
            backlog=np.full((n, services), 500.0),
        )

    @pytest.mark.parametrize("policy", ("least_loaded", "power_of_two"))
    def test_all_saturated_is_finite_and_conserving(self, policy):
        topology = _topology(num_nodes=6, regions=("r0", "r1"))
        balancer = make_balancer(policy, topology, seed=3)
        demand = _demand(topology, services=2)
        rates = balancer.assign(1, demand, self._saturated_loads(6))
        assert np.isfinite(rates).all()
        assert (rates >= 0).all()
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            np.testing.assert_allclose(
                rates[nodes].sum(axis=0), demand[r], rtol=0, atol=1e-9
            )

    def test_least_loaded_underflowed_headroom_splits_uniformly(self):
        # Drive the headroom sum below any meaningful scale via a tiny
        # floor: the fallback must be a uniform split, not NaN shares.
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = LeastLoadedBalancer(topology, floor=1e-300)
        shares = balancer._shares(0, 1, 4, np.array([400.0]), np.full(4, 2.0) * 1e300)
        assert np.isfinite(shares).all()
        np.testing.assert_allclose(shares.sum(axis=0), 1.0, atol=1e-9)
        np.testing.assert_allclose(shares[:, 0], 0.25)

    def test_least_loaded_nan_pressure_is_finite(self):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = LeastLoadedBalancer(topology)
        shares = balancer._shares(
            0, 1, 3, np.array([300.0]), np.array([np.nan, 0.5, np.nan])
        )
        assert np.isfinite(shares).all()
        np.testing.assert_allclose(shares.sum(axis=0), 1.0, atol=1e-9)

    def test_power_of_two_nan_pressure_loses_ties(self):
        topology = _topology(num_nodes=2, regions=("r0",))
        balancer = PowerOfTwoBalancer(topology, seed=1, granularity=256)
        loads = NodeLoads(
            arrival_rps=np.full((2, 1), 100.0),
            utilization=np.array([[np.nan], [0.5]]),
            backlog=np.zeros((2, 1)),
        )
        rates = balancer.assign(1, np.array([[200.0]]), loads)
        assert np.isfinite(rates).all()
        # The NaN-telemetry node reads as saturated: it only receives
        # chunks when both choices land on it.
        assert rates[0, 0] < rates[1, 0]


class TestDegradedShedding:
    def _loads_with_degraded(self, n, degraded, services=2):
        return NodeLoads(
            arrival_rps=np.full((n, services), 100.0),
            utilization=np.full((n, services), 0.5),
            backlog=np.zeros((n, services)),
            degraded=np.asarray(degraded, dtype=bool),
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_degraded_node_sheds_all_load(self, policy):
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[400.0, 800.0]])
        loads = self._loads_with_degraded(4, [True, False, False, False])
        rates = balancer.assign(1, demand, loads)
        np.testing.assert_allclose(rates[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(rates.sum(axis=0), demand[0], atol=1e-9)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_live_node_absorbs_region(self, policy):
        topology = _topology(num_nodes=3, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[300.0]])
        loads = self._loads_with_degraded(3, [True, False, True], services=1)
        rates = balancer.assign(1, demand, loads)
        np.testing.assert_allclose(rates[1, 0], 300.0, atol=1e-9)
        np.testing.assert_allclose(rates[[0, 2], 0], 0.0, atol=1e-12)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_degraded_keeps_conservation(self, policy):
        # Nowhere to shed to: shares must be kept rather than zeroed.
        topology = _topology(num_nodes=4, regions=("r0",))
        balancer = make_balancer(policy, topology, seed=3)
        demand = np.array([[400.0, 100.0]])
        loads = self._loads_with_degraded(4, [True] * 4)
        rates = balancer.assign(1, demand, loads)
        assert np.isfinite(rates).all()
        np.testing.assert_allclose(rates.sum(axis=0), demand[0], atol=1e-9)

    def test_uniform_fallback_when_live_shares_collapse(self):
        # A column whose live shares are all zero falls back to a uniform
        # split over live nodes.
        from repro.cluster.balancer import _shed_degraded

        shares = np.array([[1.0], [0.0], [0.0]])
        shed = _shed_degraded(shares, np.array([True, False, False]))
        np.testing.assert_allclose(shed[:, 0], [0.0, 0.5, 0.5])


class TestInterface:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_balancer("random_spray", _topology())

    def test_wrong_demand_shape_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.zeros((5, 2)))  # 5 regions, topology has 2

    def test_negative_demand_rejected(self):
        balancer = make_balancer("round_robin", _topology())
        with pytest.raises(ConfigurationError):
            balancer.assign(0, np.full((2, 1), -1.0))


class TestVectorizedEquivalence:
    """The batched assign paths are *bitwise* identical to the per-region
    reference loop they replaced (the shard/vector engines rely on this:
    switching balancer internals must not perturb trajectories)."""

    @staticmethod
    def _reference_shed(shares, degraded):
        degraded = np.asarray(degraded, dtype=bool)
        if not degraded.any() or degraded.all():
            return shares
        shed = shares.copy()
        shed[degraded] = 0.0
        live = ~degraded
        column_total = shed.sum(axis=0)
        uniform_live = live.astype(np.float64) / live.sum()
        for s in range(shed.shape[1]):
            if column_total[s] > 0.0:
                shed[:, s] /= column_total[s]
            else:
                shed[:, s] = uniform_live
        return shed

    @classmethod
    def _reference_assign(cls, policy, t, demand, loads):
        """The pre-vectorization region-by-region assign loop."""
        demand = np.asarray(demand, dtype=np.float64)
        topology = policy.topology
        pressure = loads.pressure() if loads is not None else None
        degraded = loads.degraded_mask() if loads is not None else None
        rates = np.zeros((topology.num_nodes, demand.shape[1]))
        for r in range(topology.num_regions):
            nodes = topology.region_nodes(r)
            node_pressure = pressure[nodes] if pressure is not None else None
            shares = policy._shares(r, t, len(nodes), demand[r], node_pressure)
            if degraded is not None:
                shares = cls._reference_shed(shares, degraded[nodes])
            rates[nodes] = shares * demand[r][None, :]
        return rates

    def _loads_case(self, topology, case, services=3, seed=1):
        if case == "none":
            return None
        rng = np.random.default_rng(seed)
        n = topology.num_nodes
        degraded = None
        if case == "some_degraded":
            degraded = rng.random(n) < 0.3
        elif case == "all_degraded":
            degraded = np.ones(n, dtype=bool)
        elif case == "half_degraded":
            degraded = np.zeros(n, dtype=bool)
            degraded[: max(1, n // 2)] = True
        return NodeLoads(
            arrival_rps=200.0 * rng.random((n, services)),
            utilization=rng.random((n, services)),
            backlog=np.where(rng.random((n, services)) > 0.7, 50.0, 0.0),
            degraded=degraded,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize(
        "num_nodes,regions",
        [
            (64, ("r0", "r1")),  # batch fast path: N % R == 0
            (1024, ("a", "b", "c", "d")),
            (7, ("r0", "r1")),  # uneven regions: loop fallback
            (1, ("r0",)),
        ],
    )
    @pytest.mark.parametrize(
        "case", ["none", "loads", "some_degraded", "all_degraded", "half_degraded"]
    )
    def test_assign_bitwise_matches_reference(self, policy, num_nodes, regions, case):
        topology = ClusterTopology(num_nodes, regions)
        demand = _demand(topology)
        loads = self._loads_case(topology, case)
        batched = make_balancer(policy, topology, seed=5)
        reference = make_balancer(policy, topology, seed=5)
        for t in range(3):
            got = batched.assign(t, demand, loads)
            want = self._reference_assign(reference, t, demand, loads)
            assert np.array_equal(got, want), (policy, t)

    def test_shed_batch_matches_per_region(self):
        from repro.cluster.balancer import _shed_degraded, _shed_degraded_batch

        rng = np.random.default_rng(9)
        R, m, S = 5, 8, 3
        shares = rng.random((R, m, S))
        shares /= shares.sum(axis=1, keepdims=True)
        degraded = rng.random((R, m)) < 0.4
        degraded[1] = False  # untouched region
        degraded[2] = True  # fully-degraded region
        degraded[3] = False
        degraded[3, :7] = True  # one survivor; zero-share columns possible
        got = _shed_degraded_batch(shares.copy(), degraded)
        for r in range(R):
            want = _shed_degraded(shares[r].copy(), degraded[r])
            assert np.array_equal(got[r], want), r

    def test_sharded_by_key_matches_per_service_hashing(self):
        from repro.cluster.balancer import _mix_hash

        topology = ClusterTopology(13, ("r0",))
        policy = make_balancer("sharded_by_key", topology, seed=9)
        n, S = 13, 4
        shares = policy._shares(0, 0, n, np.ones(S), None)
        shards = np.arange(policy.num_shards, dtype=np.uint64)
        for s in range(S):
            salt = (
                np.uint64(0) * np.uint64(0x100000001B3)
                + np.uint64(s) * np.uint64(0x1000193)
                + np.uint64(policy.seed & 0xFFFFFFFF)
            )
            nodes = (_mix_hash(shards + salt) % np.uint64(n)).astype(np.int64)
            want = np.bincount(nodes, weights=policy._shard_weights, minlength=n)
            assert np.array_equal(shares[:, s], want), s

    def test_batch_path_actually_engages(self):
        # Guard against the fast path silently never firing: a policy with
        # a batch hook must not call the per-region _shares when N % R == 0.
        topology = ClusterTopology(8, ("r0", "r1"))
        balancer = make_balancer("least_loaded", topology, seed=3)
        calls = []
        original = balancer._shares

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        balancer._shares = spy
        loads = self._loads_case(topology, "loads")
        balancer.assign(0, _demand(topology), loads)
        assert calls == []
        # ... and the loop fallback does use it when regions are uneven.
        topology = ClusterTopology(7, ("r0", "r1"))
        balancer = make_balancer("least_loaded", topology, seed=3)
        balancer._shares = spy
        balancer.assign(0, _demand(topology), self._loads_case(topology, "loads"))
        assert len(calls) == 2
