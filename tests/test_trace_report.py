"""Unit tests for the trace report renderer."""

from pathlib import Path

import pytest

from repro.analysis.trace_report import (
    learning_curve,
    longest_episode,
    render_report,
    render_timings,
    violation_episodes,
)
from repro.errors import ConfigurationError
from repro.obs import read_trace
from repro.obs.events import make_event

GOLDEN = str(Path(__file__).parent / "data" / "golden_trace.jsonl")


def _violation(t, service, consecutive, tardiness=1.5):
    return make_event(
        "qos_violation", t, service=service, p99_ms=tardiness,
        qos_target_ms=1.0, tardiness=tardiness, consecutive=consecutive,
    )


def test_violation_episodes_grouping():
    events = [
        _violation(3, "a", 1, 1.2),
        _violation(4, "a", 2, 2.0),
        _violation(4, "b", 1, 1.1),
        _violation(9, "a", 1, 1.4),
    ]
    episodes = violation_episodes(events)
    assert [(e.service, e.start, e.end) for e in episodes] == [
        ("a", 3, 4), ("b", 4, 4), ("a", 9, 9),
    ]
    assert episodes[0].length == 2
    assert episodes[0].peak_tardiness == pytest.approx(2.0)


def test_longest_episode_selection():
    events = [
        _violation(3, "a", 1), _violation(4, "a", 2),
        _violation(9, "b", 1),
    ]
    worst = longest_episode(events)
    assert (worst.service, worst.length) == ("a", 2)
    assert longest_episode(events, service="b").start == 9
    assert longest_episode(events, service="c") is None


def test_learning_curve_buckets():
    curve = learning_curve(read_trace(GOLDEN), bucket=2)
    assert curve["step"] == [2.0, 4.0]
    assert curve["reward"] == [pytest.approx(1.5), pytest.approx(-0.1875)]
    assert curve["qos_pct"] == [pytest.approx(100.0), pytest.approx(50.0)]


def test_learning_curve_requires_intervals():
    with pytest.raises(ConfigurationError, match="no interval"):
        learning_curve([_violation(1, "a", 1)])


def test_render_report_from_path_and_events():
    from_path = render_report(GOLDEN, bucket=2)
    from_events = render_report(read_trace(GOLDEN), bucket=2)
    assert from_path == from_events
    assert "Learning curve" in from_path
    assert "peak tardiness 1.50x" in from_path


def test_render_report_empty_trace(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ConfigurationError, match="empty"):
        render_report(empty)


def _timing(count, total_s):
    mean_ms = total_s / count * 1e3
    return {
        "count": count, "total_s": total_s, "mean_ms": mean_ms,
        "p50_ms": mean_ms, "p99_ms": mean_ms, "max_ms": mean_ms,
    }


def test_render_timings_nests_subsections_under_parent():
    table = render_timings(
        {
            "agent.train": _timing(100, 2.0),
            "agent.train.forward": _timing(100, 0.8),
            "agent.train.backward": _timing(100, 1.0),
            "agent.train.optim": _timing(100, 0.15),
            "agent.train.replay": _timing(200, 0.05),
            "env.step": _timing(400, 4.0),
        }
    )
    lines = table.splitlines()
    # Top-level sections ordered by total time; children indented under
    # agent.train, ordered by their own totals, with a share of the parent.
    roots = [l for l in lines if not l.startswith("   ")]
    assert roots[1].lstrip().startswith("env.step")
    train = lines.index(next(l for l in lines if "agent.train " in l))
    assert "agent.train.backward" in lines[train + 1]
    assert "50.0%" in lines[train + 1]
    assert "agent.train.forward" in lines[train + 2]
    assert "40.0%" in lines[train + 2]
    # Orphan sub-labels (no measured parent) stay top-level.
    orphan = render_timings({"agent.act.fast": _timing(1, 0.1)})
    assert "agent.act.fast" in orphan


def test_render_timings_empty():
    assert render_timings({}) == "(no timings recorded)"


def test_render_report_appends_timings_section():
    with_timings = render_report(
        GOLDEN, bucket=2, timings={"agent.train": _timing(3, 0.3)}
    )
    assert "Timings" in with_timings
    assert "agent.train" in with_timings
    assert "Timings" not in render_report(GOLDEN, bucket=2)
