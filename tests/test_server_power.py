"""Unit tests for the physical power model and RAPL sensor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.server.power import PowerModel, RaplSensor
from repro.server.spec import ServerSpec


def test_power_increases_with_frequency(spec):
    model = PowerModel(spec)
    assert model.core_dynamic_w(2.0, 1.0) > model.core_dynamic_w(1.2, 1.0)


def test_power_increases_superlinearly_with_frequency(spec):
    """CV^2 f: doubling frequency should more than double dynamic power."""
    model = PowerModel(spec)
    low = model.core_dynamic_w(1.0, 1.0)
    high = model.core_dynamic_w(2.0, 1.0)
    assert high > 2.0 * low


def test_power_scales_with_utilization(spec):
    model = PowerModel(spec)
    assert model.core_dynamic_w(2.0, 0.5) == pytest.approx(
        0.5 * model.core_dynamic_w(2.0, 1.0)
    )
    with pytest.raises(ConfigurationError):
        model.core_dynamic_w(2.0, 1.5)


def test_socket_power_breakdown(spec):
    model = PowerModel(spec)
    breakdown = model.socket_power([(2.0, 1.0)] * 4, membw_utilization=0.5)
    assert breakdown.idle_w == spec.idle_power_w
    assert breakdown.static_w == pytest.approx(spec.core_static_w * 18)
    assert breakdown.uncore_w == pytest.approx(0.5 * spec.uncore_bw_w)
    assert breakdown.total_w == pytest.approx(
        breakdown.idle_w + breakdown.static_w + breakdown.dynamic_w + breakdown.uncore_w
    )


def test_max_power_is_upper_bound(spec):
    model = PowerModel(spec)
    max_power = model.max_power_w()
    some = model.socket_power([(1.6, 0.7)] * 10).total_w
    assert some < max_power
    # realistic magnitude for an E5-2695v4-class socket
    assert 80.0 < max_power < 150.0


def test_idle_below_max(spec):
    model = PowerModel(spec)
    assert model.idle_power_w() < model.max_power_w()


def test_hotplugged_cores_reduce_static_power(spec):
    model = PowerModel(spec)
    on = model.socket_power([], online_cores=18).total_w
    off = model.socket_power([], online_cores=4).total_w
    assert off < on


def test_rapl_accumulates_energy(rng):
    sensor = RaplSensor(rng, noise_std=0.0)
    sensor.poll({1: 50.0}, interval_s=2.0)
    sensor.poll({1: 100.0}, interval_s=1.0)
    assert sensor.energy_j == pytest.approx(200.0)


def test_rapl_noise_is_bounded_and_centered(rng):
    sensor = RaplSensor(rng, noise_std=0.01)
    readings = [sensor.poll({0: 100.0}, 1.0)[0] for _ in range(500)]
    assert abs(np.mean(readings) - 100.0) < 1.0
    assert np.std(readings) > 0


def test_rapl_validation(rng):
    with pytest.raises(ConfigurationError):
        RaplSensor(rng, noise_std=-0.1)
    sensor = RaplSensor(rng)
    with pytest.raises(ConfigurationError):
        sensor.poll({0: 10.0}, interval_s=0.0)
