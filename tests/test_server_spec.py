"""Unit tests for the server specification."""

import pytest

from repro.errors import ConfigurationError
from repro.server.spec import DvfsLadder, ServerSpec, SocketSpec


def test_default_ladder_matches_paper():
    ladder = DvfsLadder()
    assert len(ladder) == 9
    assert ladder.min_ghz == pytest.approx(1.2)
    assert ladder.max_ghz == pytest.approx(2.0)
    assert ladder[4] == pytest.approx(1.6)


def test_ladder_index_of():
    ladder = DvfsLadder()
    assert ladder.index_of(1.5) == 3
    with pytest.raises(ConfigurationError):
        ladder.index_of(2.5)


def test_ladder_validation():
    with pytest.raises(ConfigurationError):
        DvfsLadder(frequencies_ghz=(2.0,))
    with pytest.raises(ConfigurationError):
        DvfsLadder(frequencies_ghz=(2.0, 1.2))
    with pytest.raises(ConfigurationError):
        DvfsLadder(frequencies_ghz=(1.2, 1.2, 2.0))


def test_default_spec_matches_paper_platform():
    spec = ServerSpec()
    assert spec.sockets == 2
    assert spec.cores_per_socket == 18
    assert spec.total_cores == 36


def test_socket_core_ids():
    spec = ServerSpec()
    assert spec.socket_core_ids(0) == list(range(18))
    assert spec.socket_core_ids(1) == list(range(18, 36))
    with pytest.raises(ConfigurationError):
        spec.socket_core_ids(2)


def test_voltage_monotone_in_frequency():
    spec = ServerSpec()
    assert spec.voltage(2.0) > spec.voltage(1.2) > 0


def test_socket_validation():
    with pytest.raises(ConfigurationError):
        SocketSpec(cores=0)
    with pytest.raises(ConfigurationError):
        SocketSpec(membw_gbps=-1)
