"""Unit tests for repro.nn.losses and repro.nn.optim."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Dense
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.optim import SGD, Adam


def test_mse_zero_at_perfect_prediction():
    pred = np.ones((3, 2))
    loss, grad = mse_loss(pred, pred.copy())
    assert loss == 0.0
    assert np.all(grad == 0.0)


def test_mse_value_and_gradient():
    pred = np.array([[2.0]])
    target = np.array([[0.0]])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx(4.0)
    assert grad[0, 0] == pytest.approx(4.0)  # 2 * diff / n


def test_mse_shape_mismatch():
    with pytest.raises(ShapeError):
        mse_loss(np.ones((2, 2)), np.ones((3, 2)))


def test_loss_weight_shape_validation():
    """Weights must match the leading (batch) axes, not just total size.

    Regression: ``weight.reshape`` used to silently accept any weight
    whose element count happened to match (broadcasting garbage across
    the batch) and raise a confusing ``ValueError`` otherwise.
    """
    pred = np.ones((4, 3))
    target = np.zeros((4, 3))
    # Size coincidences that must be rejected, not silently reshaped.
    with pytest.raises(ShapeError, match="weight shape"):
        mse_loss(pred, target, weight=np.ones((2, 2)))  # size 4 == batch
    with pytest.raises(ShapeError, match="weight shape"):
        mse_loss(pred, target, weight=np.ones(12))  # size == pred.size
    with pytest.raises(ShapeError, match="weight shape"):
        huber_loss(pred, target, weight=np.ones((3, 4)))  # transposed
    with pytest.raises(ShapeError, match="weight shape"):
        mse_loss(pred, target, weight=np.ones((4, 3, 1)))  # too many axes
    # Valid leading-axis weights (1-D batch and full-shape) still work.
    loss_batch, _ = mse_loss(pred, target, weight=np.ones(4))
    loss_full, _ = mse_loss(pred, target, weight=np.ones((4, 3)))
    assert loss_batch == pytest.approx(loss_full) == pytest.approx(1.0)


def test_mse_weights_scale_loss():
    pred = np.array([[1.0], [1.0]])
    target = np.array([[0.0], [0.0]])
    _, grad_unweighted = mse_loss(pred, target)
    _, grad_weighted = mse_loss(pred, target, weight=np.array([2.0, 0.0]))
    assert grad_weighted[0, 0] == pytest.approx(2.0 * grad_unweighted[0, 0])
    assert grad_weighted[1, 0] == 0.0


def test_huber_quadratic_inside_delta():
    pred = np.array([[0.5]])
    target = np.array([[0.0]])
    loss, grad = huber_loss(pred, target, delta=1.0)
    assert loss == pytest.approx(0.125)
    assert grad[0, 0] == pytest.approx(0.5)


def test_huber_linear_outside_delta():
    pred = np.array([[5.0]])
    target = np.array([[0.0]])
    loss, grad = huber_loss(pred, target, delta=1.0)
    assert loss == pytest.approx(4.5)  # delta*(|d| - delta/2)
    assert grad[0, 0] == pytest.approx(1.0)


def test_sgd_descends(rng):
    layer = Dense(2, 1, rng)
    opt = SGD(layer.parameters(), learning_rate=0.05)
    x = rng.normal(size=(64, 2))
    y = x @ np.array([[1.0], [-2.0]]) + 0.5
    losses = []
    for _ in range(200):
        pred = layer.forward(x)
        loss, grad = mse_loss(pred, y)
        losses.append(loss)
        layer.backward(grad)
        opt.step()
        opt.zero_grad()
    assert losses[-1] < 0.01 * losses[0]


def test_adam_descends_faster_than_sgd_on_scaled_problem(rng):
    def train(opt_cls, **kwargs):
        gen = np.random.default_rng(0)
        layer = Dense(2, 1, gen)
        opt = opt_cls(layer.parameters(), **kwargs)
        x = gen.normal(size=(64, 2)) * np.array([100.0, 0.01])
        y = x @ np.array([[0.01], [100.0]])
        for _ in range(100):
            pred = layer.forward(x)
            loss, grad = mse_loss(pred, y)
            layer.backward(grad)
            opt.step()
            opt.zero_grad()
        return loss

    assert train(Adam, learning_rate=0.05) < train(SGD, learning_rate=1e-5)


def test_gradient_clipping_bounds_norm(rng):
    layer = Dense(2, 2, rng)
    opt = SGD(layer.parameters(), learning_rate=0.1, max_grad_norm=1.0)
    layer.weight.grad[...] = 100.0
    layer.bias.grad[...] = 100.0
    opt._clip_gradients()
    total = np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in opt.parameters))
    assert total == pytest.approx(1.0, rel=1e-6)


def test_gradient_clipping_no_clip_branch(rng):
    """Gradients already under the threshold pass through untouched, and
    the pre-clip norm is still reported."""
    layer = Dense(2, 2, rng)
    opt = SGD(layer.parameters(), learning_rate=0.1, max_grad_norm=100.0)
    layer.weight.grad[...] = 0.5
    layer.bias.grad[...] = 0.5
    before = [p.grad.copy() for p in opt.parameters]
    norm = opt._clip_gradients()
    expected = np.sqrt(sum(float(np.sum(g ** 2)) for g in before))
    assert norm == pytest.approx(expected)
    for param, grad in zip(opt.parameters, before):
        assert np.array_equal(param.grad, grad)


def test_nonpositive_max_grad_norm_rejected(rng):
    """Regression: max_grad_norm <= 0 used to silently disable clipping
    instead of being rejected at construction."""
    layer = Dense(2, 2, rng)
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(ConfigurationError):
            SGD(layer.parameters(), learning_rate=0.1, max_grad_norm=bad)
        with pytest.raises(ConfigurationError):
            Adam(layer.parameters(), max_grad_norm=bad)
    # None still means "no clipping", explicitly.
    opt = SGD(layer.parameters(), learning_rate=0.1, max_grad_norm=None)
    layer.weight.grad[...] = 100.0
    layer.bias.grad[...] = 100.0
    opt._clip_gradients()
    assert np.all(layer.weight.grad == 100.0)


def test_optimizer_validation(rng):
    layer = Dense(2, 2, rng)
    with pytest.raises(ConfigurationError):
        SGD(layer.parameters(), learning_rate=-1.0)
    with pytest.raises(ConfigurationError):
        Adam(layer.parameters(), beta1=1.0)
    with pytest.raises(ConfigurationError):
        SGD([], learning_rate=0.1)


def test_adam_default_learning_rate_is_papers(rng):
    layer = Dense(2, 2, rng)
    assert Adam(layer.parameters()).learning_rate == pytest.approx(0.0025)
