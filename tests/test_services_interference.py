"""Unit tests for the memory-bandwidth + LLC interference model."""

import pytest

from repro.errors import ConfigurationError
from repro.services.interference import InterferenceModel, ServiceDemand
from repro.services.profiles import get_profile


def _model():
    return InterferenceModel(membw_capacity_gbps=60.0, llc_capacity_mb=45.0)


def test_no_pressure_alone_at_low_load(masstree):
    model = _model()
    contention = model.resolve_single(masstree, throughput_rps=200.0)
    assert contention.inflation == pytest.approx(1.0)
    assert contention.miss_inflation == pytest.approx(1.0)


def test_bandwidth_pressure_kicks_in_past_knee(moses):
    model = _model()
    # Moses at high load generates tens of GB/s.
    low = model.resolve_single(moses, throughput_rps=500.0)
    high = model.resolve_single(moses, throughput_rps=5000.0)
    assert high.membw_utilization > low.membw_utilization
    assert high.inflation > low.inflation >= 1.0


def test_sensitive_service_suffers_more(masstree, moses):
    """Masstree (sensitive, light) is hurt by Moses (heavy) more than
    Moses is hurt by Masstree — the paper's motivating asymmetry."""
    model = _model()
    demands = {
        "masstree": ServiceDemand(profile=masstree, throughput_rps=500.0),
        "moses": ServiceDemand(profile=moses, throughput_rps=4500.0),
    }
    contention = model.resolve(demands)
    assert contention["masstree"].inflation > contention["moses"].inflation


def test_llc_overcommit_inflates_misses(moses, xapian):
    model = InterferenceModel(membw_capacity_gbps=1000.0, llc_capacity_mb=40.0)
    demands = {
        "moses": ServiceDemand(profile=moses, throughput_rps=2000.0),
        "xapian": ServiceDemand(profile=xapian, throughput_rps=800.0),
    }
    contention = model.resolve(demands)
    assert contention["moses"].llc_overcommit > 1.0
    assert contention["moses"].miss_inflation > 1.0
    assert contention["xapian"].miss_inflation > 1.0


def test_llc_fits_no_inflation(masstree, xapian):
    model = InterferenceModel(membw_capacity_gbps=1000.0, llc_capacity_mb=100.0)
    demands = {
        "masstree": ServiceDemand(profile=masstree, throughput_rps=200.0),
        "xapian": ServiceDemand(profile=xapian, throughput_rps=200.0),
    }
    contention = model.resolve(demands)
    assert contention["masstree"].miss_inflation == pytest.approx(1.0)


def test_pressure_curve_smooth_at_knee():
    model = _model()
    just_below = model._bandwidth_pressure(model.bandwidth_knee - 1e-9)
    just_above = model._bandwidth_pressure(model.bandwidth_knee + 1e-6)
    assert just_below == 0.0
    assert just_above < 1e-10  # continuous, starts at zero


def test_validation():
    with pytest.raises(ConfigurationError):
        InterferenceModel(membw_capacity_gbps=0.0, llc_capacity_mb=45.0)
