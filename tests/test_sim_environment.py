"""Unit tests for the colocation environment."""

import numpy as np
import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.pmc.counters import COUNTER_NAMES
from repro.server.machine import CoreAssignment
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _env(rng, names=("masstree",), fractions=(0.5,), **cfg_kwargs):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    gens = {
        n: ConstantLoad(get_profile(n).max_load_rps, f, rng=np.random.default_rng(i))
        for i, (n, f) in enumerate(zip(names, fractions))
    }
    config = EnvironmentConfig(spec=spec, **cfg_kwargs)
    return ColocationEnvironment(config, profiles, gens, rng)


def _full_socket(env, freq_index=8):
    cores = tuple(env.socket_core_ids)
    return {n: CoreAssignment(cores=cores, freq_index=freq_index) for n in env.service_names}


def test_step_returns_observations_and_power(rng):
    env = _env(rng)
    result = env.step(_full_socket(env))
    assert result.time == 1
    obs = result.observations["masstree"]
    assert obs.p99_ms > 0
    assert set(obs.pmcs) == set(COUNTER_NAMES)
    assert result.true_power_w > 0
    assert result.energy_j > 0


def test_energy_accumulates(rng):
    env = _env(rng)
    assignments = _full_socket(env)
    env.step(assignments)
    first = env.energy_j
    env.step(assignments)
    assert env.energy_j > first


def test_rejects_assignment_outside_server_socket(rng):
    env = _env(rng)
    bad = {"masstree": CoreAssignment(cores=(0, 1), freq_index=0)}  # socket 0
    with pytest.raises(AllocationError):
        env.step(bad)


def test_rejects_wrong_service_set(rng):
    env = _env(rng)
    with pytest.raises(AllocationError):
        env.step({"ghost": CoreAssignment(cores=(18,), freq_index=0)})


def test_missing_load_generator_rejected(rng):
    spec = ServerSpec()
    with pytest.raises(ConfigurationError):
        ColocationEnvironment(
            EnvironmentConfig(spec=spec), [get_profile("masstree")], {}, rng
        )


def test_fewer_cores_lower_power(rng):
    few = _env(np.random.default_rng(0), fractions=(0.2,))
    few_power = np.mean(
        [
            few.step(
                {"masstree": CoreAssignment(cores=tuple(few.socket_core_ids[:4]), freq_index=8)}
            ).true_power_w
            for _ in range(10)
        ]
    )
    many = _env(np.random.default_rng(0), fractions=(0.2,))
    many_power = np.mean(
        [many.step(_full_socket(many)).true_power_w for _ in range(10)]
    )
    assert few_power < many_power


def test_lower_dvfs_lower_power(rng):
    slow = _env(np.random.default_rng(0), fractions=(0.2,))
    slow_power = np.mean(
        [slow.step(_full_socket(slow, freq_index=0)).true_power_w for _ in range(10)]
    )
    fast = _env(np.random.default_rng(0), fractions=(0.2,))
    fast_power = np.mean(
        [fast.step(_full_socket(fast, freq_index=8)).true_power_w for _ in range(10)]
    )
    assert slow_power < fast_power


def test_colocation_interferes(rng):
    """Masstree's latency rises when a bandwidth-hungry Moses joins."""
    alone = _env(np.random.default_rng(0), names=("masstree",), fractions=(0.5,))
    p99_alone = np.median(
        [alone.step(_full_socket(alone)).observations["masstree"].p99_ms for _ in range(20)]
    )
    coloc = _env(
        np.random.default_rng(0), names=("masstree", "moses"), fractions=(0.5, 0.9)
    )
    p99_coloc = np.median(
        [coloc.step(_full_socket(coloc)).observations["masstree"].p99_ms for _ in range(20)]
    )
    assert p99_coloc > p99_alone


def test_timeshared_static_allocation_serves_both(rng):
    env = _env(rng, names=("masstree", "moses"), fractions=(0.3, 0.3))
    for _ in range(10):
        result = env.step(_full_socket(env))
    for name in ("masstree", "moses"):
        assert result.observations[name].qos_met, name


def test_swap_service(rng):
    env = _env(rng, names=("masstree",), fractions=(0.5,))
    gen = ConstantLoad(get_profile("xapian").max_load_rps, 0.5, rng=rng)
    env.swap_service("masstree", get_profile("xapian"), gen)
    assert env.service_names == ["xapian"]
    cores = tuple(env.socket_core_ids)
    result = env.step({"xapian": CoreAssignment(cores=cores, freq_index=8)})
    assert result.observations["xapian"].p99_ms > 0


def test_swap_unknown_service_raises(rng):
    env = _env(rng)
    with pytest.raises(ConfigurationError):
        env.swap_service("ghost", get_profile("xapian"), ConstantLoad(100, 0.1))


def test_qos_target_override(rng):
    spec = ServerSpec()
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [get_profile("masstree")],
        {"masstree": ConstantLoad(2400, 0.5, rng=rng)},
        rng,
        qos_targets={"masstree": 99.0},
    )
    assert env.qos_target_of("masstree") == 99.0


def test_hotplug_unused_reduces_power(rng):
    on = _env(np.random.default_rng(0), fractions=(0.2,), hotplug_unused=False)
    off = _env(np.random.default_rng(0), fractions=(0.2,), hotplug_unused=True)
    alloc_on = {"masstree": CoreAssignment(cores=tuple(on.socket_core_ids[:4]), freq_index=8)}
    alloc_off = {"masstree": CoreAssignment(cores=tuple(off.socket_core_ids[:4]), freq_index=8)}
    p_on = np.mean([on.step(alloc_on).true_power_w for _ in range(5)])
    p_off = np.mean([off.step(alloc_off).true_power_w for _ in range(5)])
    assert p_off < p_on
