"""Unit tests for the Equation-2 per-service power model."""

import numpy as np
import pytest

from repro.core.power_model import PowerSample, ServicePowerModel, fit_power_model
from repro.errors import ConfigurationError, NotFittedError


def _samples(rng, n=60, kappa=0.2, sigma=1.5, omega=1.8, noise=0.3):
    samples = []
    for _ in range(n):
        load = rng.uniform(10, 90)
        cores = int(rng.integers(2, 18))
        dvfs = rng.choice([1.2, 1.4, 1.6, 1.8, 2.0])
        power = kappa * load + sigma * cores + omega ** 2 * dvfs
        power += rng.normal(0, noise)
        samples.append(PowerSample(load, cores, dvfs, max(power, 0.1)))
    return samples


def test_random_search_recovers_coefficients(rng):
    samples = _samples(rng)
    model = ServicePowerModel().fit_random_search(samples, rng, n_candidates=3000)
    assert model.kappa == pytest.approx(0.2, abs=0.1)
    assert model.sigma == pytest.approx(1.5, abs=0.4)
    assert model.omega == pytest.approx(1.8, abs=0.4)
    assert model.r2 > 0.95


def test_least_squares_fits_better_or_equal(rng):
    samples = _samples(rng)
    random_model = ServicePowerModel().fit_random_search(samples, rng, n_candidates=2000)
    exact_model = ServicePowerModel().fit_least_squares(samples)
    assert exact_model.r2 >= random_model.r2 - 0.02


def test_predict_before_fit_raises():
    with pytest.raises(NotFittedError):
        ServicePowerModel().predict(50.0, 4, 1.6)


def test_predict_floors_at_small_positive(rng):
    model = ServicePowerModel()
    model.kappa, model.sigma, model.omega = 0.0, 0.0, 0.0
    model.r2 = 1.0
    assert model.predict(0.0, 1, 1.2) == pytest.approx(0.5)


def test_paae_reasonable_on_training_data(rng):
    samples = _samples(rng, noise=1.0)
    model = ServicePowerModel().fit_random_search(samples, rng, n_candidates=3000)
    paae = model.paae_pct(samples)
    # The paper reports mean PAAE 5.46% (7% max) for its first-order model.
    assert paae < 12.0


def test_needs_at_least_five_samples(rng):
    with pytest.raises(ConfigurationError):
        ServicePowerModel().fit_least_squares(_samples(rng, n=3))


def test_fit_power_model_dispatcher(rng):
    samples = _samples(rng)
    model = fit_power_model(samples, rng, method="least_squares")
    assert model.fitted
    with pytest.raises(ConfigurationError):
        fit_power_model(samples, rng, method="bogus")


def test_cv_mse_recorded_for_random_search(rng):
    samples = _samples(rng)
    model = ServicePowerModel().fit_random_search(samples, rng, n_candidates=500)
    assert model.cv_mse is not None and model.cv_mse >= 0
