"""End to end: a coordinator and 8 in-process node agents through churn.

The ISSUE acceptance scenario: node loss mid-heartbeat escalates
degraded -> offline and sheds traffic; a rolling policy update from a
trained checkpoint reaches every healthy node with version
confirmation; a torn checkpoint is refused without disturbing the
serving policy.
"""

import numpy as np
import pytest

from repro.core.config import TwigConfig
from repro.core.twig import Twig
from repro.ctrl.coordinator import Coordinator
from repro.ctrl.node_agent import TwigNodeAgent
from repro.ctrl.registry import ManualClock
from repro.ctrl.rpc import SERVER_ERROR, RpcClient, RpcRemoteError
from repro.errors import CheckpointError, ControlPlaneError
from repro.experiments.common import make_environment
from repro.obs.sink import MemorySink
from repro.services.profiles import get_profile

SERVICES = ["masstree", "xapian"]
N_NODES = 8
DEMAND = {"masstree": 4000.0, "xapian": 1200.0}


@pytest.fixture()
def fleet():
    """A coordinator (manual clock) with 8 joined node agents."""
    clock = ManualClock()
    trace = MemorySink(validate=True)
    coordinator = Coordinator(
        SERVICES,
        heartbeat_interval_s=1.0,
        degraded_after=1,
        offline_after=3,
        seed=5,
        clock=clock,
        trace=trace,
    )
    agents = []
    try:
        for i in range(N_NODES):
            agent = TwigNodeAgent(f"node-{i}", SERVICES, seed=100 + i)
            agent.join(coordinator.address)
            agents.append(agent)
        yield coordinator, agents, clock, trace
    finally:
        for agent in agents:
            agent.close()
        coordinator.close()


def beat_all(agents, skip=()):
    for agent in agents:
        if agent.node_id not in skip:
            agent.heartbeat_once()


def states(coordinator):
    return {
        record.node_id: record.state
        for record in coordinator.registry.records()
    }


def train_checkpoint(tmp_path, name="policy.npz", steps=3):
    twig = Twig(
        [get_profile(s) for s in SERVICES],
        TwigConfig.fast(),
        np.random.default_rng(321),
    )
    env = make_environment(SERVICES, [0.5, 0.4], seed=77)
    assignments = twig.initial_assignments()
    for _ in range(steps):
        assignments = twig.update(env.step(assignments))
    path = tmp_path / name
    twig.save(path)
    return path


def test_fleet_registers_and_serves(fleet):
    coordinator, agents, clock, _ = fleet
    beat_all(agents)
    assert all(state == "healthy" for state in states(coordinator).values())

    with RpcClient(coordinator.address, timeout_s=10.0) as cli:
        status = cli.call("status")
        assert status["counts"]["healthy"] == N_NODES
        allocation = cli.call("allocate", {"demand": DEMAND})
    assert set(allocation["nodes"]) == {a.node_id for a in agents}
    for svc, total in DEMAND.items():
        spread = sum(rates[svc] for rates in allocation["nodes"].values())
        assert spread == pytest.approx(total, rel=1e-6)


def test_node_loss_degrades_then_offlines_and_sheds_traffic(fleet):
    coordinator, agents, clock, trace = fleet
    beat_all(agents)
    lost = agents[3].node_id

    # The lost agent stops heartbeating mid-flight; everyone else keeps
    # beating. One missed deadline -> degraded.
    clock.advance(1.5)
    beat_all(agents, skip={lost})
    coordinator.registry.sweep()
    assert states(coordinator)[lost] == "degraded"

    # Degraded nodes stay in the topology but shed traffic.
    with RpcClient(coordinator.address, timeout_s=10.0) as cli:
        allocation = cli.call("allocate", {"demand": DEMAND})
        assert lost in allocation["nodes"]
        assert all(
            rate == 0.0 for rate in allocation["nodes"][lost].values()
        )
        for svc, total in DEMAND.items():
            spread = sum(r[svc] for r in allocation["nodes"].values())
            assert spread == pytest.approx(total, rel=1e-6)

        # Two more missed deadlines -> offline: out of the topology.
        for _ in range(2):
            clock.advance(1.0)
            beat_all(agents, skip={lost})
        coordinator.registry.sweep()
        assert states(coordinator)[lost] == "offline"
        allocation = cli.call("allocate", {"demand": DEMAND})
    assert lost not in allocation["nodes"]
    assert len(allocation["nodes"]) == N_NODES - 1
    for svc, total in DEMAND.items():
        spread = sum(r[svc] for r in allocation["nodes"].values())
        assert spread == pytest.approx(total, rel=1e-6)

    # The event stream shows the full escalation, never skipping degraded.
    changes = [
        (e["from_state"], e["to_state"])
        for e in trace.events
        if e["ev"] == "node_state_change" and e["node_id"] == lost
    ]
    assert ("healthy", "degraded") in changes
    assert ("degraded", "offline") in changes

    # A recovered heartbeat brings the node back into service.
    agents[3].heartbeat_once()
    assert states(coordinator)[lost] == "healthy"
    with RpcClient(coordinator.address, timeout_s=10.0) as cli:
        allocation = cli.call("allocate", {"demand": DEMAND})
    assert lost in allocation["nodes"]


def test_rolling_update_reaches_all_healthy_nodes(fleet, tmp_path):
    coordinator, agents, clock, trace = fleet
    beat_all(agents)
    # One node is offline during the rollout: it must be skipped.
    lost = agents[0].node_id
    clock.advance(5.0)
    beat_all(agents, skip={lost})
    coordinator.registry.sweep()
    assert states(coordinator)[lost] == "offline"

    path = train_checkpoint(tmp_path)
    with RpcClient(coordinator.address, timeout_s=30.0) as cli:
        report = cli.call("rollout", {"path": str(path)}, timeout_s=60.0)
    assert report["version"] == 1
    healthy = {a.node_id for a in agents} - {lost}
    assert set(report["updated"]) == healthy
    assert set(report["targets"]) == healthy
    assert report["failed"] == {}
    for agent in agents:
        expected = 0 if agent.node_id == lost else 1
        assert agent.policy_version == expected
    # Version confirmations are recorded in the registry.
    for record in coordinator.registry.records():
        expected = 0 if record.node_id == lost else 1
        assert record.policy_version == expected
    assert coordinator.policy_version == 1
    rollouts = [e for e in trace.events if e["ev"] == "policy_rollout"]
    assert len(rollouts) == 1
    assert rollouts[0]["updated"] == len(healthy)
    assert rollouts[0]["failed"] == 0

    # A second rollout advances the version on the same fleet.
    with RpcClient(coordinator.address, timeout_s=30.0) as cli:
        report = cli.call("rollout", {"path": str(path)}, timeout_s=60.0)
    assert report["version"] == 2
    assert set(report["updated"]) == healthy


def test_torn_checkpoint_refused_without_disturbing_policy(fleet, tmp_path):
    coordinator, agents, clock, _ = fleet
    beat_all(agents)
    path = train_checkpoint(tmp_path)

    # Establish a serving policy first.
    coordinator.rollout(str(path))
    assert coordinator.policy_version == 1

    torn = tmp_path / "torn.npz"
    data = path.read_bytes()
    torn.write_bytes(data[: len(data) // 2])

    # Direct call: staging raises before any node is contacted.
    with pytest.raises(CheckpointError):
        coordinator.rollout(str(torn))
    # Over the wire the same refusal is a SERVER_ERROR.
    with RpcClient(coordinator.address, timeout_s=30.0) as cli:
        with pytest.raises(RpcRemoteError) as err:
            cli.call("rollout", {"path": str(torn)}, timeout_s=60.0)
    assert err.value.code == SERVER_ERROR

    # Nothing moved: fleet and nodes still serve version 1.
    assert coordinator.policy_version == 1
    assert coordinator.policy_source == str(path)
    for agent in agents:
        assert agent.policy_version == 1
    # And the fleet still allocates.
    with RpcClient(coordinator.address, timeout_s=10.0) as cli:
        allocation = cli.call("allocate", {"demand": DEMAND})
    assert len(allocation["nodes"]) == N_NODES


def test_non_advancing_rollout_version_refused(fleet, tmp_path):
    coordinator, agents, _, _ = fleet
    beat_all(agents)
    path = train_checkpoint(tmp_path)
    coordinator.rollout(str(path), version=3)
    with pytest.raises(ControlPlaneError):
        coordinator.rollout(str(path), version=3)
    assert coordinator.policy_version == 3


def test_mixed_service_fleet_rejected(fleet):
    coordinator, _, _, _ = fleet
    with TwigNodeAgent("alien", ["moses"], seed=9) as alien:
        with pytest.raises(RpcRemoteError) as err:
            alien.join(coordinator.address)
    assert err.value.code == SERVER_ERROR


def test_restarted_agent_rejoins_with_fresh_epoch(fleet):
    coordinator, agents, _, _ = fleet
    beat_all(agents)
    agent = agents[5]
    old_epoch = agent.epoch
    # Simulated restart: the same node id joins again.
    new_epoch = agent.join(coordinator.address)
    assert new_epoch > old_epoch
    assert agent.heartbeat_once() == "healthy"


def test_allocate_with_no_serving_nodes_is_a_clean_error():
    clock = ManualClock()
    with Coordinator(SERVICES, clock=clock) as coordinator:
        with RpcClient(coordinator.address, timeout_s=10.0) as cli:
            with pytest.raises(RpcRemoteError) as err:
                cli.call("allocate", {"demand": DEMAND})
    assert err.value.code == SERVER_ERROR
