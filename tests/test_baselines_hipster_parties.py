"""Unit and behavioural tests for the Hipster and PARTIES baselines."""

import numpy as np
import pytest

from repro.baselines import HipsterManager, PartiesManager
from repro.errors import ConfigurationError
from repro.experiments.runner import run_manager
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _env(names, fractions, seed=7):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    gens = {
        n: ConstantLoad(get_profile(n).max_load_rps, f, rng=np.random.default_rng(seed + i))
        for i, (n, f) in enumerate(zip(names, fractions))
    }
    return ColocationEnvironment(
        EnvironmentConfig(spec=spec), profiles, gens, np.random.default_rng(seed)
    )


# --------------------------------------------------------------------- #
# Hipster
# --------------------------------------------------------------------- #
def test_hipster_config_table_ordered_by_power(rng):
    manager = HipsterManager(get_profile("masstree"), rng)
    from repro.server.power import PowerModel

    model = PowerModel(manager.spec)
    powers = [
        c.num_cores * model.core_dynamic_w(manager.spec.dvfs[c.freq_index], 1.0)
        for c in manager.configs
    ]
    assert powers == sorted(powers)
    assert len(manager.configs) == 18 * 9


def test_hipster_bucket_quantization(rng):
    manager = HipsterManager(get_profile("masstree"), rng, bucket_pct=4.0)
    assert manager.n_buckets == 25  # the paper's 4% buckets
    assert manager._bucket(0.0) == 0
    assert manager._bucket(get_profile("masstree").max_load_rps) == 24


def test_hipster_heuristic_walks_up_on_violation(rng):
    manager = HipsterManager(get_profile("masstree"), rng)
    manager._current_index = 50
    target = manager.qos_target_ms
    assert manager._heuristic_move(target * 2.0) > 51  # violation: jump
    assert manager._heuristic_move(target * 0.9) == 51  # close: one up
    assert manager._heuristic_move(target * 0.3) == 49  # slack: one down
    assert manager._heuristic_move(target * 0.7) == 50  # in band: stay


def test_hipster_learns_and_saves_energy(rng):
    profile = get_profile("masstree")
    manager = HipsterManager(
        profile, np.random.default_rng(3), spec=ServerSpec(), learning_phase_steps=400
    )
    trace = run_manager(manager, _env(["masstree"], [0.4]), 900)
    assert trace.qos_guarantee("masstree", 200) > 85.0
    assert trace.mean_cores("masstree", 200) < 18.0


def test_hipster_q_table_small_on_platform(rng):
    manager = HipsterManager(get_profile("masstree"), rng)
    assert manager.q_table_bytes() == 25 * 162 * 8


def test_hipster_validation(rng):
    with pytest.raises(ConfigurationError):
        HipsterManager(get_profile("masstree"), rng, bucket_pct=0.0)
    with pytest.raises(ConfigurationError):
        HipsterManager(get_profile("masstree"), rng, learning_phase_steps=-1)


def test_hipster_table_entries_formula():
    assert HipsterManager.table_entries(25, 3, 30) == 25 * 3 ** 30


# --------------------------------------------------------------------- #
# PARTIES
# --------------------------------------------------------------------- #
def test_parties_starts_with_even_split(rng):
    profiles = [get_profile("masstree"), get_profile("moses")]
    manager = PartiesManager(profiles, rng)
    assignments = manager.initial_assignments()
    assert len(assignments["masstree"].cores) == 9
    assert len(assignments["moses"].cores) == 9


def test_parties_adjusts_one_resource_per_poll(rng):
    profiles = [get_profile("masstree"), get_profile("moses")]
    manager = PartiesManager(profiles, np.random.default_rng(3), poll_every=2)
    env = _env(["masstree", "moses"], [0.2, 0.5])
    assignments = manager.initial_assignments()
    previous = {n: (a.num_cores, a.freq_index) for n, a in manager.allocations.items()}
    changes = []
    for _ in range(40):
        result = env.step(assignments)
        assignments = manager.update(result)
        current = {n: (a.num_cores, a.freq_index) for n, a in manager.allocations.items()}
        delta = sum(
            abs(current[n][0] - previous[n][0]) + abs(current[n][1] - previous[n][1])
            for n in current
        )
        changes.append(delta)
        previous = current
    assert max(changes) <= 1  # single-resource, single-service adjustments


def test_parties_reverts_downsize_on_violation(rng):
    from repro.core.actions import Allocation

    profiles = [get_profile("masstree"), get_profile("moses")]
    manager = PartiesManager(profiles, np.random.default_rng(0), poll_every=1)
    manager.allocations["masstree"] = Allocation(6, 8)
    manager._last_downsize = ("masstree", "cores", Allocation(7, 8))

    class FakeObs:
        def __init__(self, p99):
            self.p99_ms = p99

    class FakeResult:
        observations = {
            "masstree": FakeObs(p99=manager.qos_targets["masstree"] * 1.5),
            "moses": FakeObs(p99=1.0),
        }

    manager.update(FakeResult())
    assert manager.allocations["masstree"].num_cores == 7  # reverted
    assert manager._avoid_resource["masstree"] == "cores"


def test_parties_keeps_qos_with_more_oscillation(rng):
    profiles = [get_profile("masstree"), get_profile("moses")]
    manager = PartiesManager(profiles, np.random.default_rng(3))
    env = _env(["masstree", "moses"], [0.2, 0.5])
    trace = run_manager(manager, env, 600)
    assert trace.qos_guarantee("masstree", 300) > 85.0
    assert trace.qos_guarantee("moses", 300) > 85.0
    # it never stops nudging allocations (the paper's ping-pong)
    total_migrations = sum(trace.migrations.values())
    assert total_migrations > 30


def test_parties_validation(rng):
    with pytest.raises(ConfigurationError):
        PartiesManager([], rng)
    with pytest.raises(ConfigurationError):
        PartiesManager([get_profile("masstree")], rng, poll_every=0)
