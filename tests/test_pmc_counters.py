"""Unit tests for the counter catalogue (Table I)."""

import pytest

from repro.errors import ConfigurationError
from repro.pmc.counters import COUNTER_NAMES, PAPER_IMPORTANCE, CounterCatalogue


def test_eleven_counters_in_paper_order():
    assert len(COUNTER_NAMES) == 11
    assert COUNTER_NAMES[0] == "UNHALTED_CORE_CYCLES"
    assert COUNTER_NAMES[8] == "LLC_MISSES"


def test_paper_importance_is_a_permutation():
    assert sorted(PAPER_IMPORTANCE.values()) == list(range(1, 12))
    assert PAPER_IMPORTANCE["PERF_COUNT_HW_BRANCH_MISSES"] == 1
    assert PAPER_IMPORTANCE["LLC_MISSES"] == 2


def test_max_values_cover_all_counters(spec):
    catalogue = CounterCatalogue(spec)
    maxima = catalogue.max_values()
    assert set(maxima) == set(COUNTER_NAMES)
    assert all(v > 0 for v in maxima.values())


def test_max_values_scale_with_interval(spec):
    catalogue = CounterCatalogue(spec)
    one = catalogue.max_values(1.0)
    two = catalogue.max_values(2.0)
    for name in COUNTER_NAMES:
        assert two[name] == pytest.approx(2.0 * one[name])


def test_max_cycles_formula(spec):
    catalogue = CounterCatalogue(spec, cores=18)
    maxima = catalogue.max_values(1.0)
    assert maxima["UNHALTED_CORE_CYCLES"] == pytest.approx(18 * 2.0e9)


def test_scope_validation(spec):
    with pytest.raises(ConfigurationError):
        CounterCatalogue(spec, cores=100)
    with pytest.raises(ConfigurationError):
        CounterCatalogue(spec).max_values(0.0)
