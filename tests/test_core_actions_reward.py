"""Unit tests for the action space and Equation-1 reward."""

import pytest

from repro.core.actions import ActionSpace, Allocation
from repro.core.reward import RewardParams, compute_reward
from repro.errors import ConfigurationError


def test_action_space_branch_sizes(spec):
    space = ActionSpace(spec)
    assert space.branch_sizes == [18, 9]


def test_decode_encode_roundtrip(spec):
    space = ActionSpace(spec)
    for cores_action in (0, 7, 17):
        for freq_action in (0, 4, 8):
            allocation = space.decode([cores_action, freq_action])
            assert allocation.num_cores == cores_action + 1
            assert allocation.freq_index == freq_action
            assert space.encode(allocation) == [cores_action, freq_action]


def test_decode_validation(spec):
    space = ActionSpace(spec)
    with pytest.raises(ConfigurationError):
        space.decode([18, 0])
    with pytest.raises(ConfigurationError):
        space.decode([0, 9])
    with pytest.raises(ConfigurationError):
        space.decode([0])


def test_frequency_lookup(spec):
    space = ActionSpace(spec)
    assert space.frequency_ghz(Allocation(4, 0)) == pytest.approx(1.2)
    assert space.frequency_ghz(Allocation(4, 8)) == pytest.approx(2.0)


def test_max_cores_restriction(spec):
    space = ActionSpace(spec, max_cores=10)
    assert space.branch_sizes == [10, 9]
    with pytest.raises(ConfigurationError):
        space.encode(Allocation(11, 0))


def test_allocation_validation():
    with pytest.raises(ConfigurationError):
        Allocation(0, 0)
    with pytest.raises(ConfigurationError):
        Allocation(1, -1)


# --------------------------------------------------------------------- #
# Equation 1
# --------------------------------------------------------------------- #
def test_reward_qos_met_combines_terms():
    # qos_rew = 0.5, power_rew = 100/25 = 4, theta = 0.5 -> 0.5 + 2.0
    reward = compute_reward(5.0, 10.0, 100.0, 25.0)
    assert reward == pytest.approx(2.5)


def test_reward_prefers_cheaper_allocation():
    expensive = compute_reward(5.0, 10.0, 100.0, 50.0)
    cheap = compute_reward(5.0, 10.0, 100.0, 10.0)
    assert cheap > expensive


def test_reward_encourages_just_meeting_qos():
    """Closer to target (still met) scores higher: QoS_rew rises."""
    tight = compute_reward(9.0, 10.0, 100.0, 25.0)
    slack = compute_reward(1.0, 10.0, 100.0, 25.0)
    assert tight > slack


def test_reward_violation_polynomial_penalty():
    # tardiness 2 -> -(2^3) = -8
    assert compute_reward(20.0, 10.0, 100.0, 25.0) == pytest.approx(-8.0)


def test_reward_violation_capped():
    # tardiness 10 -> -(1000) capped at -100
    assert compute_reward(100.0, 10.0, 100.0, 25.0) == pytest.approx(-100.0)


def test_reward_boundary_is_met():
    reward = compute_reward(10.0, 10.0, 100.0, 100.0)
    assert reward == pytest.approx(1.0 + 0.5)


def test_mild_violation_is_mild():
    """Just over the target gives ~-1, not the cap — boundary-hugging is
    recoverable, deep violations are catastrophic."""
    mild = compute_reward(10.5, 10.0, 100.0, 25.0)
    assert -2.0 < mild < 0.0


def test_reward_params_validation():
    with pytest.raises(ConfigurationError):
        RewardParams(theta=-1.0)
    with pytest.raises(ConfigurationError):
        RewardParams(phi=0.0)
    with pytest.raises(ConfigurationError):
        RewardParams(cap=1.0)
    with pytest.raises(ConfigurationError):
        compute_reward(1.0, 0.0, 100.0, 10.0)
    with pytest.raises(ConfigurationError):
        compute_reward(1.0, 10.0, 0.0, 10.0)


def test_paper_default_params():
    params = RewardParams()
    assert params.theta == 0.5
    assert params.phi == 3.0
    assert params.cap == -100.0
