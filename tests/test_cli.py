"""Tests for the command-line interface."""

import pytest

from repro.cli import _config_for, build_parser, main


def test_list_prints_all_artifacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("fig01", "tab02", "fig13", "mem"):
        assert experiment_id in out


def test_capacity_prints_platform(capsys):
    assert main(["capacity"]) == 0
    out = capsys.readouterr().out
    assert "masstree" in out
    assert "2 x 18 cores" in out


def test_run_dispatches_fast_experiment(capsys):
    assert main(["run", "mem"]) == 0
    out = capsys.readouterr().out
    assert "Twig BDQ" in out


def test_run_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig99"])


def test_config_for_scales():
    quick = _config_for("fig05", "quick")
    default = _config_for("fig05", "default")
    assert len(quick.services) < len(default.services)
    assert _config_for("tab03", "quick") is None  # uses module default


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_jobs_flag_parses():
    args = build_parser().parse_args(["run", "mem", "tab02", "--jobs", "4"])
    assert args.jobs == 4
    assert build_parser().parse_args(["run", "mem"]).jobs == 1


def test_run_parallel_batch_prints_both_tables(capsys, tmp_path):
    assert main(["run", "mem", "tab02", "--jobs", "2", "--out-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "== mem (ok) ==" in out
    assert "== tab02 (ok) ==" in out
