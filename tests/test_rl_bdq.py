"""Unit tests for the (multi-agent) BDQ network, including gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.network import numerical_gradient
from repro.rl.bdq import BDQNetwork


def _net(rng, agents=2, dropout=0.0):
    return BDQNetwork(
        state_dim=6,
        branch_sizes=[[5, 3]] * agents,
        rng=rng,
        shared_hidden=(16, 8),
        branch_hidden=4,
        dropout=dropout,
    )


def test_forward_structure(rng):
    net = _net(rng)
    q = net.forward(rng.normal(size=(7, 6)))
    assert len(q) == 2
    assert q[0][0].shape == (7, 5)
    assert q[0][1].shape == (7, 3)


def test_dueling_identity_mean_advantage_is_value(rng):
    """mean_a Q(s, a) == V(s) per branch — the dueling decomposition."""
    net = _net(rng)
    x = rng.normal(size=(4, 6))
    shared = net.trunk.forward(x)
    q = net.forward(x)
    for k in range(2):
        value = net.value_heads[k].forward(shared)
        for d in range(2):
            assert np.allclose(q[k][d].mean(axis=1, keepdims=True), value, atol=1e-9)


def test_invalid_configs(rng):
    with pytest.raises(ConfigurationError):
        BDQNetwork(0, [[3]], rng)
    with pytest.raises(ConfigurationError):
        BDQNetwork(4, [], rng)
    with pytest.raises(ConfigurationError):
        BDQNetwork(4, [[1]], rng)


def test_forward_rejects_wrong_state_dim(rng):
    net = _net(rng)
    with pytest.raises(ShapeError):
        net.forward(np.ones((2, 5)))


def test_backward_before_forward_raises(rng):
    net = _net(rng)
    with pytest.raises(ShapeError):
        net.backward([[np.ones((1, 5)), np.ones((1, 3))]] * 2)


def test_gradient_check_full_network(rng):
    """Analytic gradients (incl. the paper's rescaling) match numerics.

    The rescaling factors (1/K into each advantage branch, 1/total-branches
    into the trunk) make the analytic gradient a *scaled* version of the
    true gradient of the scalar loss; the check verifies each parameter
    group against the true gradient scaled by its expected factor.
    """
    net = _net(rng, agents=2, dropout=0.0)
    x = rng.normal(size=(3, 6))
    targets = [
        [rng.normal(size=(3, 5)), rng.normal(size=(3, 3))],
        [rng.normal(size=(3, 5)), rng.normal(size=(3, 3))],
    ]

    def loss():
        q = net.forward(x)
        return 0.5 * sum(
            float(np.sum((q[k][d] - targets[k][d]) ** 2))
            for k in range(2)
            for d in range(2)
        )

    q = net.forward(x)
    grads = [[q[k][d] - targets[k][d] for d in range(2)] for k in range(2)]
    for p in net.parameters():
        p.zero_grad()
    net.backward(grads)

    # Advantage-branch parameters: scaled by 1/K = 1/2.
    adv_param = net.adv_heads[0][0].parameters()[0]
    numeric = numerical_gradient(loss, adv_param, sample=6, rng=rng)
    mask = ~np.isnan(numeric)
    assert np.allclose(adv_param.grad[mask], numeric[mask] / 2.0, atol=1e-4)

    # Value-head parameters: not rescaled.
    val_param = net.value_heads[1].parameters()[0]
    numeric = numerical_gradient(loss, val_param, sample=6, rng=rng)
    mask = ~np.isnan(numeric)
    assert np.allclose(val_param.grad[mask], numeric[mask], atol=1e-4)


def test_trunk_gradient_scaling(rng):
    """Trunk gradients shrink by 1/total_branches (advantage part also 1/K)."""
    x = np.random.default_rng(0).normal(size=(2, 6))
    grads_template = None
    trunk_grads = {}
    for agents in (1, 2):
        gen = np.random.default_rng(7)
        net = _net(gen, agents=agents)
        q = net.forward(x)
        grads = [[np.ones_like(q[k][d]) for d in range(2)] for k in range(agents)]
        for p in net.parameters():
            p.zero_grad()
        net.backward(grads)
        trunk_grads[agents] = np.linalg.norm(net.trunk.parameters()[0].grad)
    # More agents -> more branches -> per-branch trunk contribution shrinks;
    # both nets share identical trunk init (same seed), so the 2-agent trunk
    # gradient per unit of head gradient is strictly smaller than 2x.
    assert trunk_grads[2] < 2.0 * trunk_grads[1]


def test_clone_and_copy_from(rng):
    net = _net(rng)
    clone = net.clone(np.random.default_rng(9))
    x = rng.normal(size=(2, 6))
    qa, qb = net.forward(x), clone.forward(x)
    for k in range(2):
        for d in range(2):
            assert np.allclose(qa[k][d], qb[k][d])
    # diverge then resync
    net.parameters()[0].value += 1.0
    clone.copy_from(net)
    qa, qb = net.forward(x), clone.forward(x)
    assert np.allclose(qa[0][0], qb[0][0])


def test_reinitialize_output_layers_keeps_trunk(rng):
    net = _net(rng)
    trunk_before = net.trunk.parameters()[0].value.copy()
    out_before = net.adv_heads[0][0].layers[-1].weight.value.copy()
    net.reinitialize_output_layers(np.random.default_rng(3))
    assert np.array_equal(net.trunk.parameters()[0].value, trunk_before)
    assert not np.array_equal(net.adv_heads[0][0].layers[-1].weight.value, out_before)


def test_greedy_actions_structure(rng):
    net = _net(rng)
    actions = net.greedy_actions(rng.normal(size=6))
    assert len(actions) == 2
    assert len(actions[0]) == 2
    assert 0 <= actions[0][0] < 5
    assert 0 <= actions[0][1] < 3


def test_parameter_count_matches_architecture(rng):
    net = BDQNetwork(4, [[3, 2]], rng, shared_hidden=(8,), branch_hidden=4, dropout=0.0)
    # trunk: 4*8+8; value: 8*4+4 + 4*1+1; adv0: 8*4+4 + 4*3+3; adv1: 8*4+4 + 4*2+2
    expected = (4 * 8 + 8) + (8 * 4 + 4 + 4 * 1 + 1) + (8 * 4 + 4 + 4 * 3 + 3) + (
        8 * 4 + 4 + 4 * 2 + 2
    )
    assert net.parameter_count() == expected
    assert net.parameter_bytes() == expected * 8
