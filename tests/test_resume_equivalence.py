"""Resume-equivalence guarantees of the full-state checkpoint subsystem.

The contract under test: a run checkpointed at step T and resumed into
*freshly constructed* (differently seeded) objects reproduces the
uninterrupted run's actions, losses, traces, and Q-values bit for bit —
for both BDQ implementations at the agent level, and end to end through
``run_manager``. Plus the failure half of the contract: a torn checkpoint
raises ``CheckpointError`` and leaves the target object untouched.
"""

import numpy as np
import pytest

from repro.ckpt.checkpoint import load_state, save_state
from repro.core import Twig, TwigConfig
from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.runner import RUN_CKPT_NAME, run_manager
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition
from repro.rl.bdq_reference import ReferenceBDQAgent
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig

IMPLEMENTATIONS = [BDQAgent, ReferenceBDQAgent]


def _config(**overrides):
    defaults = dict(
        state_dim=6,
        branch_sizes=[[5, 3], [4, 2]],
        min_buffer_size=16,
        buffer_capacity=256,
        batch_size=16,
        shared_hidden=(32, 16),
        branch_hidden=8,
        dropout=0.5,  # non-zero: resume must replay dropout masks exactly
        epsilon_mid_steps=40,
        epsilon_final_steps=90,
    )
    defaults.update(overrides)
    return BDQAgentConfig(**defaults)


def _drive(agent, feeder, steps):
    """Act/observe for ``steps`` transitions; returns (actions, losses)."""
    record = []
    for _ in range(steps):
        state = feeder.normal(size=agent.config.state_dim)
        actions = agent.act(state)
        loss = agent.observe(
            Transition(
                state=state,
                actions=actions,
                rewards=feeder.normal(size=len(agent.config.branch_sizes)),
                next_state=feeder.normal(size=agent.config.state_dim),
            )
        )
        record.append((tuple(tuple(b) for b in actions), loss))
    return record


@pytest.mark.parametrize("cls", IMPLEMENTATIONS)
def test_agent_resume_is_bit_identical(tmp_path, cls):
    path = tmp_path / "agent.ckpt"
    # Uninterrupted: 30 warmup + 30 recorded continuation steps.
    uninterrupted = cls(_config(), np.random.default_rng(5))
    feeder = np.random.default_rng(17)
    _drive(uninterrupted, feeder, 30)
    expected = _drive(uninterrupted, feeder, 30)

    # Checkpointed: same warmup, save, restore into a *differently seeded*
    # fresh agent — every bit of continuation state must come from disk.
    agent = cls(_config(), np.random.default_rng(5))
    feeder = np.random.default_rng(17)
    _drive(agent, feeder, 30)
    agent.save(path)
    resumed = cls(_config(), np.random.default_rng(12345))
    resumed.load(path)

    assert resumed.step_count == agent.step_count == 30
    assert resumed.train_count == agent.train_count
    got = _drive(resumed, feeder, 30)
    assert got == expected  # actions AND losses, bit for bit

    # After the continuation the resumed agent's Q-function matches the
    # uninterrupted agent's exactly.
    probe = np.random.default_rng(3).normal(size=resumed.config.state_dim)
    assert (
        resumed.online.greedy_actions(probe)
        == uninterrupted.online.greedy_actions(probe)
    )


@pytest.mark.parametrize("cls", IMPLEMENTATIONS)
def test_torn_checkpoint_never_half_loads(tmp_path, cls):
    path = tmp_path / "agent.ckpt"
    agent = cls(_config(), np.random.default_rng(5))
    _drive(agent, np.random.default_rng(17), 30)
    written = agent.save(path) or (tmp_path / "agent.ckpt.npz")

    victim = cls(_config(), np.random.default_rng(9))
    _drive(victim, np.random.default_rng(2), 20)
    before = [p.value.copy() for p in victim.online.parameters()]
    step_count, train_count = victim.step_count, victim.train_count

    data = written.read_bytes()
    written.write_bytes(data[: len(data) // 2])
    with pytest.raises(CheckpointError):
        victim.load(path)

    # Nothing committed: weights, counters, and buffer are untouched.
    for param, old in zip(victim.online.parameters(), before):
        assert np.array_equal(param.value, old)
    assert victim.step_count == step_count
    assert victim.train_count == train_count


def test_load_restores_schedule_state(tmp_path):
    """Regression: load used to leave ``step_count = 0``, silently
    restarting the epsilon schedule of a trained agent."""
    agent = BDQAgent(_config(), np.random.default_rng(5))
    _drive(agent, np.random.default_rng(17), 30)
    agent.save(tmp_path / "agent.ckpt")
    fresh = BDQAgent(_config(), np.random.default_rng(1))
    assert fresh.step_count == 0
    fresh.load(tmp_path / "agent.ckpt")
    assert fresh.step_count == 30
    assert fresh.epsilon() == agent.epsilon()


def test_legacy_weight_only_checkpoint_loads_with_warning(tmp_path):
    from repro.nn.network import save_weights

    agent = BDQAgent(_config(), np.random.default_rng(5))
    _drive(agent, np.random.default_rng(17), 20)
    path = tmp_path / "legacy.npz"
    save_weights(agent.online.parameters(), path)

    other = BDQAgent(_config(), np.random.default_rng(9))
    with pytest.warns(UserWarning, match="legacy weight-only"):
        other.load(path)
    probe = np.random.default_rng(3).normal(size=agent.config.state_dim)
    assert other.online.greedy_actions(probe) == agent.online.greedy_actions(probe)
    # Target resynced from the restored online network.
    for p, t in zip(other.online.parameters(), other.target.parameters()):
        assert np.array_equal(p.value, t.value)


def test_cross_implementation_checkpoints_interchange(tmp_path):
    """A fused-agent checkpoint restores into the reference agent (and
    back) exactly: weights, counters, and optimizer moments all match."""
    fused = BDQAgent(_config(), np.random.default_rng(5))
    _drive(fused, np.random.default_rng(17), 30)
    fused.save(tmp_path / "fused.ckpt")

    reference = ReferenceBDQAgent(_config(), np.random.default_rng(99))
    reference.load(tmp_path / "fused.ckpt")
    assert reference.step_count == fused.step_count
    probe = np.random.default_rng(3).normal(size=fused.config.state_dim)
    assert reference.online.greedy_actions(probe) == fused.online.greedy_actions(probe)

    reference.save(tmp_path / "reference.ckpt")
    round_tripped = BDQAgent(_config(), np.random.default_rng(4))
    round_tripped.load(tmp_path / "reference.ckpt")
    # Optimizer moments survive the fused -> reference -> fused translation
    # bit-exactly (padded arena entries are provably zero).
    a = load_state(tmp_path / "fused.ckpt")["optimizer"]
    b = round_tripped.state_dict()["optimizer"]
    assert a["step_count"] == b["step_count"]
    for name in ("first_moment", "second_moment"):
        assert sorted(a[name]) == sorted(b[name])
        for key in a[name]:
            assert np.array_equal(a[name][key], b[name][key])


def test_transfer_restart_epsilon_at_zero(tmp_path):
    """Regression: ``transfer(restart_epsilon_at=0)`` used a falsy check,
    making the 0 rewind unreachable."""
    agent = BDQAgent(_config(), np.random.default_rng(5))
    agent.step_count = 77
    agent.transfer(np.random.default_rng(1), restart_epsilon_at=0)
    assert agent.step_count == 0
    agent.step_count = 77
    agent.transfer(np.random.default_rng(1))  # no sentinel: untouched
    assert agent.step_count == 77
    with pytest.raises(ConfigurationError):
        agent.transfer(np.random.default_rng(1), restart_epsilon_at=-1)


# ---------------------------------------------------------------------- #
# end-to-end: run_manager checkpoint/resume
# ---------------------------------------------------------------------- #
def _twig_and_env(seed=5):
    spec = ServerSpec()
    profiles = [get_profile("masstree")]
    twig = Twig(profiles, TwigConfig.fast(), np.random.default_rng(seed), spec=spec)
    generators = {
        "masstree": ConstantLoad(
            get_profile("masstree").max_load_rps, 0.4, rng=np.random.default_rng(0)
        )
    }
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec), profiles, generators, np.random.default_rng(seed + 1)
    )
    return twig, env


def _trace_tuple(trace):
    parts = [tuple(trace.power_w), tuple(trace.true_power_w), tuple(trace.membw_utilization)]
    for name, service in trace.services.items():
        parts.append(
            (
                name,
                tuple(service.p99_ms),
                tuple(service.arrival_rps),
                tuple(service.cores),
                tuple(service.frequency_ghz),
                service.qos_target_ms,
            )
        )
    parts.append(tuple(sorted(trace.migrations.items())))
    return parts


def test_run_manager_resume_is_bit_identical(tmp_path):
    steps = 40
    twig, env = _twig_and_env()
    reference = run_manager(twig, env, steps)

    twig, env = _twig_and_env()
    checkpointed = run_manager(
        twig, env, steps, checkpoint_every=15, checkpoint_dir=tmp_path
    )
    assert (tmp_path / RUN_CKPT_NAME).exists()
    assert _trace_tuple(checkpointed) == _trace_tuple(reference)

    # Resume into freshly built, differently seeded manager + environment:
    # the full RunTrace must still be bit-identical to the uninterrupted run.
    twig, env = _twig_and_env(seed=123)
    resumed = run_manager(twig, env, steps, resume_from=tmp_path)
    assert _trace_tuple(resumed) == _trace_tuple(reference)
    assert resumed.steps() == steps


def test_run_manager_resume_validates_manager_and_steps(tmp_path):
    twig, env = _twig_and_env()
    run_manager(twig, env, 20, checkpoint_every=10, checkpoint_dir=tmp_path)

    twig, env = _twig_and_env()
    with pytest.raises(CheckpointError, match="20-step run"):
        run_manager(twig, env, 30, resume_from=tmp_path)

    from repro.baselines import StaticManager

    with pytest.raises(CheckpointError, match="manager"):
        run_manager(StaticManager(["masstree"]), env, 20, resume_from=tmp_path)


def test_run_manager_checkpoint_requires_capable_manager(tmp_path):
    from repro.baselines import StaticManager

    _, env = _twig_and_env()
    with pytest.raises(ConfigurationError, match="checkpointing"):
        run_manager(
            StaticManager(["masstree"]), env, 20,
            checkpoint_every=5, checkpoint_dir=tmp_path,
        )


def test_run_manager_checkpoint_flag_validation(tmp_path):
    twig, env = _twig_and_env()
    with pytest.raises(ConfigurationError, match="requires checkpoint_dir"):
        run_manager(twig, env, 10, checkpoint_every=5)
    with pytest.raises(ConfigurationError, match="checkpoint_every must be positive"):
        run_manager(twig, env, 10, checkpoint_every=0, checkpoint_dir=tmp_path)


def test_run_checkpoint_rejects_wrong_kind(tmp_path):
    twig, env = _twig_and_env()
    save_state(tmp_path / RUN_CKPT_NAME, "twig", twig.state_dict())
    with pytest.raises(CheckpointError, match="expected 'run'"):
        run_manager(twig, env, 10, resume_from=tmp_path)


def test_twig_full_checkpoint_roundtrip(tmp_path):
    """Twig.save/.load restores the control-loop context, not just the
    agent: held allocations, pending transition half, monitor history."""
    twig, env = _twig_and_env()
    assignments = twig.initial_assignments()
    for _ in range(6):
        result = env.step(assignments)
        assignments = twig.update(result)
    twig.save(tmp_path / "twig.ckpt")

    other, _ = _twig_and_env(seed=77)
    other.load(tmp_path / "twig.ckpt")
    assert other._last_allocations == twig._last_allocations
    assert other._prev_actions == twig._prev_actions
    assert np.array_equal(other._prev_state, twig._prev_state)
    assert other.last_rewards == twig.last_rewards
    assert other.agent.step_count == twig.agent.step_count
    # Both managers now produce identical next assignments.
    result = env.step(assignments)
    assert twig.update(result) == other.update(result)
