"""Fused head-bank vs frozen per-head reference: equivalence contract.

The fused :class:`~repro.rl.bdq.BDQNetwork` must be a pure execution-layout
change: same RNG draw order at init, identical eval-mode Q-values,
identical gradients with dropout = 0, identical greedy actions, and an
unchanged checkpoint format (fused and reference checkpoints are
interchangeable). These tests pin that contract against
:mod:`repro.rl.bdq_reference` across 1-, 2- and 3-agent configurations
with ragged branch sizes, and guard the hot path against reintroducing a
per-head Python loop.
"""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition
from repro.rl.bdq import BDQNetwork
from repro.rl.bdq_reference import ReferenceBDQAgent, ReferenceBDQNetwork

# Ragged branch widths on purpose: padding correctness only shows when
# branches disagree within and across agents.
CONFIGS = [
    pytest.param([[18, 9]], id="1-agent"),
    pytest.param([[18, 9], [12, 9]], id="2-agent-ragged"),
    pytest.param([[18, 9], [12, 9], [18, 5]], id="3-agent-ragged"),
]

STATE_DIM = 7
TOL = 1e-10


def _pair(branch_sizes, seed=5, dropout=0.0):
    """Fused + reference networks built from identical RNG streams."""
    kwargs = dict(shared_hidden=(24, 12), branch_hidden=8, dropout=dropout)
    fused = BDQNetwork(STATE_DIM, branch_sizes, np.random.default_rng(seed), **kwargs)
    ref = ReferenceBDQNetwork(
        STATE_DIM, branch_sizes, np.random.default_rng(seed), **kwargs
    )
    return fused, ref


def _assert_q_equal(qa, qb, tol=TOL):
    for agent_a, agent_b in zip(qa, qb):
        for branch_a, branch_b in zip(agent_a, agent_b):
            assert branch_a.shape == branch_b.shape
            assert np.max(np.abs(branch_a - branch_b)) <= tol


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_same_seed_same_parameters(branch_sizes):
    fused, ref = _pair(branch_sizes)
    fused_params, ref_params = fused.parameters(), ref.parameters()
    assert len(fused_params) == len(ref_params)
    for f, r in zip(fused_params, ref_params):
        assert f.name == r.name
        assert f.value.shape == r.value.shape
        assert np.array_equal(f.value, r.value)


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_eval_q_values_match(branch_sizes, rng):
    fused, ref = _pair(branch_sizes)
    states = rng.normal(size=(9, STATE_DIM))
    _assert_q_equal(fused.forward(states), ref.forward(states))


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_backward_gradients_match_with_zero_dropout(branch_sizes, rng):
    fused, ref = _pair(branch_sizes, dropout=0.0)
    states = rng.normal(size=(6, STATE_DIM))
    grads = [
        [rng.normal(size=(6, n)) for n in agent] for agent in branch_sizes
    ]
    for net in (fused, ref):
        net.forward(states, training=True)
        for p in net.parameters():
            p.zero_grad()
        net.backward([[g.copy() for g in agent] for agent in grads])
    for f, r in zip(fused.parameters(), ref.parameters()):
        assert np.max(np.abs(f.grad - r.grad)) <= TOL, f.name


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_greedy_actions_match(branch_sizes, rng):
    fused, ref = _pair(branch_sizes)
    for _ in range(25):
        state = rng.normal(size=STATE_DIM)
        assert fused.greedy_actions(state) == ref.greedy_actions(state)


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_q_single_matches_batched_forward(branch_sizes, rng):
    """The act fast path agrees with the batched eval forward."""
    fused, _ = _pair(branch_sizes)
    for _ in range(5):
        state = rng.normal(size=STATE_DIM)
        q_fast = fused.q_single(state)
        q_batch = fused.forward_stacked(state[None, :])[0]
        assert np.max(np.abs(q_fast[np.isfinite(q_fast)] - q_batch[np.isfinite(q_batch)])) <= TOL
        assert np.array_equal(np.isinf(q_fast), np.isinf(q_batch))


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_checkpoints_interchangeable(branch_sizes, tmp_path, rng):
    from repro.nn.network import load_weights, save_weights

    fused, ref = _pair(branch_sizes, seed=5)
    fused2, ref2 = _pair(branch_sizes, seed=99)
    states = rng.normal(size=(4, STATE_DIM))

    # fused -> reference and reference -> fused, through the same .npz format.
    save_weights(fused.parameters(), tmp_path / "fused.npz")
    load_weights(ref2.parameters(), tmp_path / "fused.npz")
    _assert_q_equal(fused.forward(states), ref2.forward(states))

    save_weights(ref.parameters(), tmp_path / "ref.npz")
    load_weights(fused2.parameters(), tmp_path / "ref.npz")
    _assert_q_equal(ref.forward(states), fused2.forward(states))
    # Loading into the fused net must hit the stacked storage the hot path
    # reads, not just the view parameters.
    assert fused2.greedy_actions(states[0]) == ref.greedy_actions(states[0])


def test_dueling_aggregation_with_training_dropout(rng):
    """Training-mode forward keeps the dueling identity per branch.

    Fused and reference draw different dropout masks (one stacked draw vs
    one draw per head), so values are not comparable across
    implementations; the invariant mean_a Q = V must still hold within the
    fused one.
    """
    net, _ = _pair([[18, 9], [12, 9]], dropout=0.5)
    states = rng.normal(size=(5, STATE_DIM))
    q = net.forward_stacked(states, training=True, mask_padding=False)
    for b, n in enumerate(net.branch_sizes_flat):
        k = net.branch_agent_index[b]
        # V is recoverable as the valid-entry mean of Q for the branch.
        mean_q = q[:, b, :n].mean(axis=1)
        mean_q_other = q[
            :, net.agent_branch_starts[k], : net.branch_sizes_flat[net.agent_branch_starts[k]]
        ].mean(axis=1)
        assert np.allclose(mean_q, mean_q_other, atol=1e-9)


def _agent_pair(branch_sizes, agent_cls_pairs=(BDQAgent, ReferenceBDQAgent), seed=11):
    agents = []
    for cls in agent_cls_pairs:
        config = BDQAgentConfig(
            state_dim=STATE_DIM,
            branch_sizes=branch_sizes,
            min_buffer_size=12,
            buffer_capacity=300,
            batch_size=12,
            shared_hidden=(24, 12),
            branch_hidden=8,
            dropout=0.0,
            epsilon_mid_steps=50,
            epsilon_final_steps=100,
        )
        agents.append(cls(config, np.random.default_rng(seed)))
    return agents


@pytest.mark.parametrize("branch_sizes", CONFIGS)
def test_agent_train_step_equivalence(branch_sizes, rng):
    """Identical seeds + transitions -> same losses, priorities, weights.

    Both implementations consume identical RNG streams (with dropout = 0
    neither training forward draws), so equivalence holds through PER
    sampling and multiple optimizer steps; tolerance covers GEMM
    reassociation only.
    """
    fused_agent, ref_agent = _agent_pair(branch_sizes)
    feeder = np.random.default_rng(77)
    for step in range(30):
        state = feeder.normal(size=STATE_DIM)
        next_state = feeder.normal(size=STATE_DIM)
        actions = [
            [int(feeder.integers(0, n)) for n in agent] for agent in branch_sizes
        ]
        rewards = feeder.normal(size=len(branch_sizes))
        transition = Transition(state, actions, rewards, next_state)
        loss_a = fused_agent.observe(transition)
        loss_b = ref_agent.observe(transition)
        if loss_a is None or loss_b is None:
            assert loss_a is None and loss_b is None
            continue
        assert loss_a == pytest.approx(loss_b, rel=1e-9, abs=1e-12)
        assert fused_agent.last_td_error == pytest.approx(
            ref_agent.last_td_error, rel=1e-9, abs=1e-12
        )
    assert fused_agent.train_count == ref_agent.train_count > 0
    # The networks themselves stayed in lockstep through Adam updates.
    for f, r in zip(fused_agent.online.parameters(), ref_agent.online.parameters()):
        assert np.allclose(f.value, r.value, rtol=1e-8, atol=1e-10), f.name
    probe = feeder.normal(size=STATE_DIM)
    assert fused_agent.act(probe, greedy=True) == ref_agent.act(probe, greedy=True)


def test_agent_save_load_roundtrip_formats(tmp_path):
    """Agent checkpoints cross-load between fused and reference agents."""
    fused_agent, ref_agent = _agent_pair([[18, 9], [12, 9]])
    fused_agent.save(tmp_path / "a.npz")
    ref_agent.load(tmp_path / "a.npz")
    probe = np.random.default_rng(3).normal(size=STATE_DIM)
    assert fused_agent.act(probe, greedy=True) == ref_agent.act(probe, greedy=True)


# ---------------------------------------------------------------------- #
# hot-path guard: no per-head Python loops
# ---------------------------------------------------------------------- #
def test_hot_path_never_calls_per_head_dense(monkeypatch, rng):
    """forward/backward/train_step must run on the fused bank.

    The per-head ``Dense`` layers stay alive as views for save/load and
    introspection, but the hot path must never call their ``forward``/
    ``backward`` — one call per head is exactly the many-small-GEMMs
    pathology this refactor removed. A reintroduced per-head loop trips
    this counter.
    """
    calls = {"forward": 0, "backward": 0}
    dense_forward, dense_backward = Dense.forward, Dense.backward

    def counting_forward(self, x, training=False):
        calls["forward"] += 1
        return dense_forward(self, x, training=training)

    def counting_backward(self, grad):
        calls["backward"] += 1
        return dense_backward(self, grad)

    monkeypatch.setattr(Dense, "forward", counting_forward)
    monkeypatch.setattr(Dense, "backward", counting_backward)

    (fused_agent,) = _agent_pair([[18, 9], [12, 9]], agent_cls_pairs=(BDQAgent,))
    net = fused_agent.online
    states = rng.normal(size=(8, STATE_DIM))

    q = net.forward_stacked(states, training=True, mask_padding=False)
    net.backward_stacked(np.zeros_like(q), accumulate=False)
    net.q_single(states[0])
    net.greedy_actions(states[0])
    assert calls == {"forward": 0, "backward": 0}

    feeder = np.random.default_rng(1)
    for _ in range(15):
        state = feeder.normal(size=STATE_DIM)
        fused_agent.observe(
            Transition(
                state,
                [[0, 0], [1, 2]],
                feeder.normal(size=2),
                feeder.normal(size=STATE_DIM),
            )
        )
    assert fused_agent.train_count > 0
    assert calls == {"forward": 0, "backward": 0}


def test_head_bank_is_engaged(monkeypatch, rng):
    """Every batched network forward goes through HeadBank exactly once."""
    from repro.nn.batched import HeadBank

    bank_calls = {"n": 0}
    bank_forward = HeadBank.forward

    def counting(self, shared, training=False):
        bank_calls["n"] += 1
        return bank_forward(self, shared, training=training)

    monkeypatch.setattr(HeadBank, "forward", counting)
    net, _ = _pair([[18, 9], [12, 9]])
    net.forward(rng.normal(size=(4, STATE_DIM)))
    assert bank_calls["n"] == 1
