"""Unit tests for the repro.ckpt checkpoint container.

Covers the format contract: nested-tree round-trips, path normalisation,
kind/version gating, legacy-file detection, torn-write recovery (a
truncated file must raise ``CheckpointError``, never half-load), and the
atomic-replace write path.
"""

import json
import os

import numpy as np
import pytest

from repro.ckpt.checkpoint import (
    CKPT_FORMAT,
    CKPT_VERSION,
    META_KEY,
    checkpoint_kind,
    load_state,
    resolve_checkpoint_path,
    rng_state,
    save_state,
    set_rng_state,
)
from repro.errors import CheckpointError


def _tree():
    return {
        "weights": {
            "layer0": np.arange(6, dtype=np.float64).reshape(2, 3),
            "layer1": np.ones(4, dtype=np.float32),
        },
        "counters": {"step": 42, "loss": 0.125, "frozen": False, "last": None},
        "names": ["a", "b"],
        "empty": {},
    }


def test_roundtrip_preserves_tree_shape_and_values(tmp_path):
    path = save_state(tmp_path / "state.npz", "test", _tree())
    tree = load_state(path, kind="test")
    assert np.array_equal(tree["weights"]["layer0"], _tree()["weights"]["layer0"])
    assert tree["weights"]["layer1"].dtype == np.float32
    assert tree["counters"] == {"step": 42, "loss": 0.125, "frozen": False, "last": None}
    assert tree["names"] == ["a", "b"]
    assert tree["empty"] == {}


def test_suffixless_path_roundtrips(tmp_path):
    written = save_state(tmp_path / "ckpt", "test", _tree())
    assert written.name == "ckpt.npz"
    # Loading through the suffix-less path applies the same normalisation.
    tree = load_state(tmp_path / "ckpt", kind="test")
    assert tree["counters"]["step"] == 42


def test_resolve_matches_savez_appending_rule():
    assert resolve_checkpoint_path("a/ckpt").name == "ckpt.npz"
    assert resolve_checkpoint_path("a/ckpt.npz").name == "ckpt.npz"
    # np.savez appends (never replaces) unknown suffixes.
    assert resolve_checkpoint_path("a/ckpt.foo").name == "ckpt.foo.npz"


def test_kind_tag_round_trips_and_gates_loading(tmp_path):
    path = save_state(tmp_path / "a.npz", "bdq_agent", {"x": 1})
    assert checkpoint_kind(path) == "bdq_agent"
    with pytest.raises(CheckpointError, match="expected 'twig'"):
        load_state(path, kind="twig")
    assert load_state(path)["x"] == 1  # kind=None accepts anything


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(tmp_path / "nope.npz")
    with pytest.raises(FileNotFoundError):
        checkpoint_kind(tmp_path / "nope.npz")


def test_legacy_npz_detected_not_loaded(tmp_path):
    path = tmp_path / "legacy.npz"
    np.savez(path, w0=np.ones(3))
    assert checkpoint_kind(path) is None
    with pytest.raises(CheckpointError, match="legacy"):
        load_state(path)


def test_newer_version_rejected(tmp_path):
    envelope = {
        "format": CKPT_FORMAT,
        "version": CKPT_VERSION + 1,
        "kind": "test",
        "scalars": {},
    }
    path = tmp_path / "future.npz"
    meta = np.frombuffer(json.dumps(envelope).encode(), dtype=np.uint8)
    np.savez(path, **{META_KEY: meta})
    with pytest.raises(CheckpointError, match="version"):
        load_state(path)


def test_foreign_format_rejected(tmp_path):
    envelope = {"format": "other.fmt", "version": 1, "kind": "test", "scalars": {}}
    path = tmp_path / "foreign.npz"
    meta = np.frombuffer(json.dumps(envelope).encode(), dtype=np.uint8)
    np.savez(path, **{META_KEY: meta})
    with pytest.raises(CheckpointError, match="not a repro.ckpt"):
        load_state(path)


def test_torn_file_raises_checkpoint_error(tmp_path):
    path = save_state(tmp_path / "torn.npz", "test", _tree())
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CheckpointError, match="unreadable"):
        load_state(path)
    with pytest.raises(CheckpointError, match="unreadable"):
        checkpoint_kind(path)


def test_save_replaces_atomically_and_leaves_no_tmp_files(tmp_path):
    path = save_state(tmp_path / "state.npz", "test", {"v": 1})
    save_state(tmp_path / "state.npz", "test", {"v": 2})
    assert load_state(path)["v"] == 2
    leftovers = [p for p in os.listdir(tmp_path) if p != "state.npz"]
    assert leftovers == []


def test_failed_save_keeps_previous_checkpoint(tmp_path):
    path = save_state(tmp_path / "state.npz", "test", {"v": 1})
    with pytest.raises(CheckpointError, match="not serialisable"):
        save_state(path, "test", {"bad": object()})
    assert load_state(path)["v"] == 1
    leftovers = [p for p in os.listdir(tmp_path) if p != "state.npz"]
    assert leftovers == []


def test_reserved_and_separator_keys_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="invalid state tree key"):
        save_state(tmp_path / "a.npz", "test", {"a/b": 1})
    with pytest.raises(CheckpointError, match="invalid state tree key"):
        save_state(tmp_path / "b.npz", "test", {META_KEY: 1})
    with pytest.raises(CheckpointError, match="keys must be str"):
        save_state(tmp_path / "c.npz", "test", {3: 1})


@pytest.mark.parametrize("bit_generator", ["PCG64", "MT19937"])
def test_rng_state_survives_container_roundtrip(tmp_path, bit_generator):
    cls = getattr(np.random, bit_generator)
    gen = np.random.Generator(cls(1234))
    gen.normal(size=17)  # advance off the seed point
    path = save_state(tmp_path / "rng.npz", "test", {"rng": rng_state(gen)})
    other = np.random.Generator(cls(999))
    set_rng_state(other, load_state(path)["rng"])
    assert np.array_equal(gen.normal(size=32), other.normal(size=32))
    assert gen.integers(0, 1 << 62) == other.integers(0, 1 << 62)


def test_set_rng_state_rejects_garbage():
    gen = np.random.default_rng(0)
    with pytest.raises(CheckpointError, match="invalid RNG state"):
        set_rng_state(gen, {"bit_generator": "PCG64", "state": "nonsense"})


def test_numpy_scalars_serialise_in_envelope(tmp_path):
    tree = {
        "i": np.int64(7),
        "f": np.float64(2.5),
        "b": np.bool_(True),
    }
    loaded = load_state(save_state(tmp_path / "np.npz", "test", tree))
    assert loaded == {"i": 7, "f": 2.5, "b": True}
