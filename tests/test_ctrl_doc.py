"""docs/control_plane.md must document exactly the control plane the code ships.

Parses the lifecycle tables (states, transitions) and the two RPC method
references (``### `method` `` headings followed by a
``| `param` | type | description |`` table) and diffs them against
``repro.ctrl.lifecycle`` / ``COORDINATOR_METHODS`` / ``NODE_METHODS``.
Run via ``make docs-check`` (also part of the tier-1 suite).
"""

import re
from pathlib import Path

from repro.ctrl.coordinator import COORDINATOR_METHODS
from repro.ctrl.lifecycle import NODE_STATES, TRANSITIONS
from repro.ctrl.node_agent import NODE_METHODS

DOC = Path(__file__).resolve().parent.parent / "docs" / "control_plane.md"

_HEADING = re.compile(r"^### `([a-z_]+)`\s*$")
_PARAM_ROW = re.compile(r"^\| `([a-z0-9_]+)` \| ([a-z]+) \|")
_STATE_ROW = re.compile(r"^\| `([a-z]+)` \|")
_TRANSITION_ROW = re.compile(r"^\| `([a-z]+)` \| `([a-z]+)` \| `([a-z]+)` \|$")

_COORD_SECTION = "## Coordinator RPC reference"
_NODE_SECTION = "## Node agent RPC reference"
_LIFECYCLE_SECTION = "## Lifecycle state machine"


def parse_methods(text, section):
    """Return {method: {param: type}} for one RPC reference section."""
    methods = {}
    current = None
    in_section = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == section
            current = None
            continue
        if not in_section:
            continue
        heading = _HEADING.match(line)
        if heading:
            current = {}
            methods[heading.group(1)] = current
            continue
        if current is None:
            continue
        row = _PARAM_ROW.match(line)
        if row:
            current[row.group(1)] = row.group(2)
    return methods


def parse_lifecycle(text):
    """Return (states, transitions) from the lifecycle section's tables.

    The states table lives under "### States" (one backticked state per
    row), the transitions table under "### Transitions" (three backticked
    cells per row: from, event, to).
    """
    states = []
    transitions = {}
    in_section = False
    subsection = None
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == _LIFECYCLE_SECTION
            subsection = None
            continue
        if not in_section:
            continue
        if line.startswith("### "):
            subsection = line.strip()
            continue
        if subsection == "### Transitions":
            row = _TRANSITION_ROW.match(line)
            if row:
                src, event, dst = row.groups()
                transitions.setdefault(src, {})[event] = dst
            continue
        if subsection == "### States":
            row = _STATE_ROW.match(line)
            if row:
                states.append(row.group(1))
    return states, transitions


def test_doc_exists():
    assert DOC.exists(), "docs/control_plane.md is missing"


def test_doc_states_match_lifecycle():
    states, _ = parse_lifecycle(DOC.read_text())
    assert tuple(states) == NODE_STATES, (
        "states table in docs/control_plane.md disagrees with "
        f"repro.ctrl.lifecycle.NODE_STATES: doc={states}, code={list(NODE_STATES)}"
    )


def test_doc_transitions_match_lifecycle():
    _, transitions = parse_lifecycle(DOC.read_text())
    # DEREGISTERED is terminal: the code records an empty row, the doc
    # simply has no table rows for it.
    code = {s: dict(ev) for s, ev in TRANSITIONS.items() if ev}
    assert transitions == code, (
        "transitions table in docs/control_plane.md disagrees with "
        f"repro.ctrl.lifecycle.TRANSITIONS: doc={transitions}, code={code}"
    )


def _check_methods(section, registry, label):
    documented = parse_methods(DOC.read_text(), section)
    assert sorted(documented) == sorted(registry), (
        f"{label} methods in docs/control_plane.md do not match the code: "
        f"doc-only={sorted(set(documented) - set(registry))}, "
        f"code-only={sorted(set(registry) - set(documented))}"
    )
    for name, spec in registry.items():
        code_params = {p.name: p.type for p in spec.params}
        assert documented[name] == code_params, (
            f"param table for `{name}` ({label}) disagrees with the code: "
            f"doc={documented[name]}, code={code_params}"
        )


def test_doc_coordinator_methods_match_code():
    _check_methods(_COORD_SECTION, COORDINATOR_METHODS, "coordinator")


def test_doc_node_methods_match_code():
    _check_methods(_NODE_SECTION, NODE_METHODS, "node agent")


def test_parser_actually_found_tables():
    # Guard against the parsers silently matching nothing (which would
    # make the diff tests vacuous if the doc layout changed).
    text = DOC.read_text()
    states, transitions = parse_lifecycle(text)
    assert len(states) == 5
    assert sum(len(ev) for ev in transitions.values()) >= 10
    assert len(parse_methods(text, _COORD_SECTION)) >= 5
    assert len(parse_methods(text, _NODE_SECTION)) >= 5
