"""Tests for the Intel-CAT (LLC way partitioning) extension.

The paper lists cache allocation as the natural third action dimension
(its testbed could not enable CAT); our substrate models way partitioning,
the mapper arbitrates conflicting quota requests, and Twig can optionally
learn the extra branch (``TwigConfig(manage_llc=True)``).
"""

import numpy as np
import pytest

from repro.core import Twig, TwigConfig
from repro.core.actions import ActionSpace, Allocation
from repro.core.mapper import Mapper
from repro.errors import ConfigurationError
from repro.server.machine import CoreAssignment
from repro.server.spec import ServerSpec
from repro.services.interference import InterferenceModel, ServiceDemand
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def test_socket_way_granularity(spec):
    assert spec.socket.llc_ways == 20
    assert spec.socket.mb_per_way == pytest.approx(2.25)


def test_action_space_grows_with_llc_branch(spec):
    base = ActionSpace(spec)
    extended = ActionSpace(spec, manage_llc=True)
    assert base.branch_sizes == [18, 9]
    assert extended.branch_sizes == [18, 9, 21]
    allocation = extended.decode([5, 3, 8])
    assert allocation == Allocation(num_cores=6, freq_index=3, llc_ways=8)
    assert extended.encode(allocation) == [5, 3, 8]


def test_action_space_llc_validation(spec):
    extended = ActionSpace(spec, manage_llc=True)
    with pytest.raises(ConfigurationError):
        extended.decode([0, 0])  # missing the third branch
    with pytest.raises(ConfigurationError):
        extended.decode([0, 0, 21])
    with pytest.raises(ConfigurationError):
        Allocation(1, 0, llc_ways=-1)


def test_mapper_carries_and_arbitrates_ways(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map(
        {
            "a": Allocation(4, 0, llc_ways=15),
            "b": Allocation(4, 0, llc_ways=15),
        }
    )
    total = result["a"].llc_ways + result["b"].llc_ways
    assert total <= spec.socket.llc_ways
    assert result["a"].llc_ways > 0


def test_mapper_passes_ways_through_when_they_fit(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map({"a": Allocation(4, 0, llc_ways=6), "b": Allocation(4, 0)})
    assert result["a"].llc_ways == 6
    assert result["b"].llc_ways == 0


def test_partition_isolates_sensitive_service(moses, xapian):
    """Giving Xapian an exclusive partition shields it from Moses's
    cache footprint while Moses's own misses rise."""
    model = InterferenceModel(membw_capacity_gbps=1000.0, llc_capacity_mb=45.0)
    shared = model.resolve(
        {
            "moses": ServiceDemand(moses, 2500.0),
            "xapian": ServiceDemand(xapian, 900.0),
        }
    )
    partitioned = model.resolve(
        {
            "moses": ServiceDemand(moses, 2500.0),
            "xapian": ServiceDemand(xapian, 900.0, llc_quota_mb=18.0),
        }
    )
    assert partitioned["xapian"].miss_inflation < shared["xapian"].miss_inflation
    assert partitioned["moses"].miss_inflation >= shared["moses"].miss_inflation


def test_small_quota_hurts_its_owner(moses):
    model = InterferenceModel(membw_capacity_gbps=1000.0, llc_capacity_mb=45.0)
    tiny = model.resolve({"moses": ServiceDemand(moses, 2500.0, llc_quota_mb=4.0)})
    assert tiny["moses"].miss_inflation > 1.5  # working set 30 MB in 4 MB


def test_environment_applies_quota_from_assignment(rng):
    spec = ServerSpec()
    profiles = [get_profile("moses"), get_profile("xapian")]
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        profiles,
        {
            "moses": ConstantLoad(2800, 0.8, rng=np.random.default_rng(1)),
            "xapian": ConstantLoad(1000, 0.5, rng=np.random.default_rng(2)),
        },
        rng,
    )
    ids = env.socket_core_ids
    base = {
        "moses": CoreAssignment(cores=tuple(ids[:10]), freq_index=8),
        "xapian": CoreAssignment(cores=tuple(ids[10:]), freq_index=8),
    }
    shielded = {
        "moses": CoreAssignment(cores=tuple(ids[:10]), freq_index=8),
        "xapian": CoreAssignment(cores=tuple(ids[10:]), freq_index=8, llc_ways=9),
    }
    p99_shared = np.median(
        [env.step(base).observations["xapian"].p99_ms for _ in range(15)]
    )
    env2 = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        profiles,
        {
            "moses": ConstantLoad(2800, 0.8, rng=np.random.default_rng(1)),
            "xapian": ConstantLoad(1000, 0.5, rng=np.random.default_rng(2)),
        },
        np.random.default_rng(1234),
    )
    p99_shielded = np.median(
        [env2.step(shielded).observations["xapian"].p99_ms for _ in range(15)]
    )
    assert p99_shielded <= p99_shared * 1.05


def test_twig_with_llc_branch_runs(rng):
    spec = ServerSpec()
    profiles = [get_profile("moses"), get_profile("xapian")]
    config = TwigConfig.fast().scaled(manage_llc=True)
    twig = Twig(profiles, config, np.random.default_rng(42), spec=spec)
    assert twig.agent.online.branch_sizes == [[18, 9, 21], [18, 9, 21]]
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        profiles,
        {
            "moses": ConstantLoad(2800, 0.4, rng=np.random.default_rng(1)),
            "xapian": ConstantLoad(1000, 0.4, rng=np.random.default_rng(2)),
        },
        rng,
    )
    assignments = twig.initial_assignments()
    for _ in range(10):
        result = env.step(assignments)
        assignments = twig.update(result)
    for assignment in assignments.values():
        assert 0 <= assignment.llc_ways <= spec.socket.llc_ways
