"""Unit tests for the mapper module (placement, locality, arbitration)."""

import pytest

from repro.core.actions import Allocation
from repro.core.mapper import Mapper
from repro.errors import AllocationError
from repro.server.machine import Machine
from repro.server.spec import ServerSpec


def _local(assignment, spec, socket=1):
    """Translate global core ids back to socket-local indices."""
    base = socket * spec.cores_per_socket
    return [c - base for c in assignment.cores]


def test_paper_locality_example(spec):
    """Two services get every-other cores from opposite ends (Section III-B3)."""
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map(
        {"sv-1": Allocation(3, 2), "sv-2": Allocation(4, 4)}
    )
    assert _local(result["sv-1"], spec) == [0, 2, 4]
    # from the far end, every other core (the paper's 16-core example gives
    # 10, 12, 14, 16; on our 18-core socket the even cores from the top are
    # 16, 14, 12, 10)
    assert _local(result["sv-2"], spec) == [10, 12, 14, 16]


def test_disjoint_when_fits(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map({"a": Allocation(9, 0), "b": Allocation(9, 8)})
    cores_a = set(result["a"].cores)
    cores_b = set(result["b"].cores)
    assert not cores_a & cores_b
    assert len(cores_a) == 9 and len(cores_b) == 9


def test_freq_indices_preserved(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map({"a": Allocation(2, 3), "b": Allocation(2, 7)})
    assert result["a"].freq_index == 3
    assert result["b"].freq_index == 7


def test_overlap_when_oversubscribed(spec):
    """Paper's arbitration example: requests exceeding the socket overlap in
    the middle and the machine timeshares them at the max DVFS."""
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map({"a": Allocation(12, 2), "b": Allocation(10, 6)})
    cores_a = set(result["a"].cores)
    cores_b = set(result["b"].cores)
    overlap = cores_a & cores_b
    assert len(overlap) == 12 + 10 - 18
    machine = Machine(spec)
    machine.apply(result)
    for core_id in overlap:
        assert machine.cores[core_id].freq_index == 6  # max of the two requests
    only_a = cores_a - overlap
    for core_id in only_a:
        assert machine.cores[core_id].freq_index == 2


def test_three_service_overlap_covers_requests(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map(
        {"a": Allocation(8, 0), "b": Allocation(8, 0), "c": Allocation(8, 0)}
    )
    for name in ("a", "b", "c"):
        assert len(result[name].cores) == 8


def test_all_cores_on_requested_socket(spec):
    mapper = Mapper(spec, socket_index=0)
    result = mapper.map({"a": Allocation(18, 0)})
    assert set(result["a"].cores) == set(range(18))


def test_full_socket_helper(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.full_socket(["a", "b"], freq_index=8)
    assert set(result["a"].cores) == set(spec.socket_core_ids(1))
    assert result["a"].cores == result["b"].cores


def test_validation(spec):
    mapper = Mapper(spec, socket_index=1)
    with pytest.raises(AllocationError):
        mapper.map({})
    with pytest.raises(AllocationError):
        mapper.map({"a": Allocation(19, 0)})
    with pytest.raises(AllocationError):
        mapper.map({"a": Allocation(1, 99)})


def test_single_service_gets_stride_two_until_exhausted(spec):
    mapper = Mapper(spec, socket_index=1)
    result = mapper.map({"a": Allocation(10, 0)})
    local = set(_local(result["a"], spec))
    # 9 even cores exist; the 10th pick falls back to an odd core.
    assert {0, 2, 4, 6, 8, 10, 12, 14, 16} <= local
    assert len([c for c in local if c % 2 == 1]) == 1
