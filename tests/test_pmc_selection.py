"""Unit tests for the PCA/correlation counter-selection pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.pmc.selection import pearson_matrix, select_counters


def _synthetic_samples(rng, n=500):
    """Three informative signals, one redundant copy, one pure noise."""
    load = rng.uniform(0, 1, n)
    latency = 1.0 + 5.0 * load ** 3 + rng.normal(0, 0.05, n)
    samples = np.column_stack(
        [
            load + rng.normal(0, 0.02, n),          # strongly latency-related
            load ** 2 + rng.normal(0, 0.02, n),     # also related
            load + rng.normal(0, 0.0001, n),        # redundant with column 0
            rng.normal(0, 1, n),                    # noise
        ]
    )
    return samples, latency


def test_pearson_matrix_properties(rng):
    samples, _ = _synthetic_samples(rng)
    corr = pearson_matrix(samples)
    assert corr.shape == (4, 4)
    assert np.allclose(np.diag(corr), 1.0)
    assert np.allclose(corr, corr.T)
    assert np.all(np.abs(corr) <= 1.0 + 1e-9)
    assert corr[0, 2] > 0.99  # the redundant pair


def test_pearson_constant_column_is_zero():
    samples = np.column_stack([np.ones(10), np.arange(10.0)])
    corr = pearson_matrix(samples)
    assert corr[0, 1] == 0.0
    assert corr[0, 0] == 1.0


def test_selection_ranks_informative_counters_first(rng):
    samples, latency = _synthetic_samples(rng)
    names = ["load_like", "load_sq", "redundant", "noise"]
    result = select_counters(samples, latency, names)
    assert result.importance_rank["noise"] == 4
    assert result.importance_rank["load_like"] <= 2


def test_selection_drops_redundant_counter(rng):
    samples, latency = _synthetic_samples(rng)
    names = ["load_like", "load_sq", "redundant", "noise"]
    result = select_counters(samples, latency, names, redundancy_threshold=0.98)
    # Only one of the near-identical pair survives.
    assert ("load_like" in result.selected) != ("redundant" in result.selected) or (
        "load_like" in result.selected and "redundant" not in result.selected
    )


def test_explained_variance_threshold(rng):
    samples, latency = _synthetic_samples(rng)
    result = select_counters(samples, latency, ["a", "b", "c", "d"])
    cumulative = np.cumsum(result.explained_variance_ratio)
    assert cumulative[result.n_components - 1] >= 0.95 - 1e-9


def test_latency_correlation_signs(rng):
    samples, latency = _synthetic_samples(rng)
    result = select_counters(samples, latency, ["a", "b", "c", "d"])
    assert result.latency_correlation["a"] > 0.8
    assert abs(result.latency_correlation["d"]) < 0.2


def test_rank_is_permutation(rng):
    samples, latency = _synthetic_samples(rng)
    result = select_counters(samples, latency, ["a", "b", "c", "d"])
    assert sorted(result.importance_rank.values()) == [1, 2, 3, 4]


def test_validation(rng):
    samples, latency = _synthetic_samples(rng)
    with pytest.raises(ShapeError):
        select_counters(samples, latency[:-1], ["a", "b", "c", "d"])
    with pytest.raises(ShapeError):
        select_counters(samples, latency, ["a", "b"])
    with pytest.raises(ConfigurationError):
        select_counters(samples[:2], latency[:2], ["a", "b", "c", "d"])
