"""Targeted tests for smaller paths not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReproError
from repro.nn.initializers import glorot_uniform, he_uniform, zeros
from repro.rl.agent import BDQAgent, BDQAgentConfig, Transition
from repro.server.machine import CoreAssignment
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


# --------------------------------------------------------------------- #
# errors hierarchy
# --------------------------------------------------------------------- #
def test_all_errors_derive_from_repro_error():
    from repro import errors

    for name in ("ConfigurationError", "AllocationError", "ShapeError",
                 "NotFittedError", "SimulationError"):
        assert issubclass(getattr(errors, name), ReproError)


# --------------------------------------------------------------------- #
# initializers
# --------------------------------------------------------------------- #
def test_initializer_shapes_and_bounds(rng):
    for init in (glorot_uniform, he_uniform):
        weights = init(64, 32, rng)
        assert weights.shape == (64, 32)
        assert np.abs(weights).max() <= np.sqrt(6.0 / 32)  # loosest bound
    assert np.all(zeros(4, 2, rng) == 0.0)


def test_initializer_validation(rng):
    with pytest.raises(ConfigurationError):
        he_uniform(0, 4, rng)


def test_he_wider_than_glorot(rng):
    """He allows larger weights than Glorot for the same fan-in/out."""
    he_limit = np.sqrt(6.0 / 100)
    glorot_limit = np.sqrt(6.0 / 200)
    he_weights = he_uniform(100, 100, np.random.default_rng(0))
    assert np.abs(he_weights).max() > glorot_limit
    assert np.abs(he_weights).max() <= he_limit + 1e-12


# --------------------------------------------------------------------- #
# demand-aware timesharing
# --------------------------------------------------------------------- #
def test_shared_cores_split_by_demand(rng):
    """A light service sharing cores with a heavy one gets more than its
    guaranteed half when the heavy one leaves headroom — and never less
    than the fair share."""
    spec = ServerSpec()
    light, heavy = get_profile("masstree"), get_profile("moses")
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [light, heavy],
        {
            "masstree": ConstantLoad(2400, 0.1, rng=np.random.default_rng(1)),
            "moses": ConstantLoad(2800, 0.3, rng=np.random.default_rng(2)),
        },
        rng,
    )
    cores = tuple(env.socket_core_ids)
    shared = {name: CoreAssignment(cores=cores, freq_index=8) for name in ("masstree", "moses")}
    env.machine.apply(shared)
    capacities = env._effective_capacities({"masstree": 240.0, "moses": 840.0})
    assert capacities["masstree"] >= 9.0 - 1e-9   # never below the fair share
    assert capacities["moses"] >= 9.0 - 1e-9
    # With both lightly loaded, each can expand into the other's idle time.
    assert capacities["masstree"] + capacities["moses"] > 18.0


def test_overloaded_sharers_get_fair_split(rng):
    spec = ServerSpec()
    light, heavy = get_profile("masstree"), get_profile("moses")
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [light, heavy],
        {
            "masstree": ConstantLoad(2400, 1.0, rng=np.random.default_rng(1)),
            "moses": ConstantLoad(2800, 1.0, rng=np.random.default_rng(2)),
        },
        rng,
    )
    cores = tuple(env.socket_core_ids)
    shared = {name: CoreAssignment(cores=cores, freq_index=8) for name in ("masstree", "moses")}
    env.machine.apply(shared)
    capacities = env._effective_capacities({"masstree": 2400.0, "moses": 2800.0})
    assert capacities["masstree"] == pytest.approx(9.0, abs=0.5)
    assert capacities["moses"] == pytest.approx(9.0, abs=0.5)


# --------------------------------------------------------------------- #
# agent details
# --------------------------------------------------------------------- #
def test_gradient_steps_multiplies_training(rng):
    def train_count(gradient_steps):
        config = BDQAgentConfig(
            state_dim=3, branch_sizes=[[3, 2]], min_buffer_size=8,
            buffer_capacity=100, batch_size=8, shared_hidden=(8,),
            branch_hidden=4, dropout=0.0, epsilon_mid_steps=10,
            epsilon_final_steps=20, gradient_steps=gradient_steps,
        )
        agent = BDQAgent(config, np.random.default_rng(0))
        state = np.zeros(3)
        for _ in range(20):
            agent.observe(Transition(state, [[0, 0]], np.array([0.0]), state))
        return agent.train_count

    assert train_count(2) == 2 * train_count(1)


def test_local_exploration_stays_in_range(rng):
    config = BDQAgentConfig(
        state_dim=3, branch_sizes=[[18, 9]], min_buffer_size=8,
        buffer_capacity=100, batch_size=8, shared_hidden=(8,), branch_hidden=4,
        dropout=0.0, epsilon_mid_steps=10, epsilon_final_steps=20,
    )
    agent = BDQAgent(config, rng)
    agent.step_count = 0  # epsilon = 1: every branch explores
    for _ in range(200):
        cores, dvfs = agent.act(np.zeros(3))[0]
        assert 0 <= cores < 18
        assert 0 <= dvfs < 9
