"""The JSON-RPC layer: framing, correlation, timeouts, error mapping."""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.ctrl.rpc import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    SERVER_ERROR,
    RpcClient,
    RpcInvalidParams,
    RpcMethodNotFound,
    RpcRemoteError,
    RpcServer,
    parse_address,
)
from repro.errors import (
    ConfigurationError,
    ControlPlaneError,
    RpcError,
    RpcTimeout,
)


def echo_handler(method, params):
    if method == "echo":
        return params
    if method == "add":
        return params["a"] + params["b"]
    if method == "boom":
        raise ControlPlaneError("domain failure")
    if method == "bug":
        raise KeyError("oops")
    if method == "bad_params":
        raise RpcInvalidParams("need a frobnicator")
    if method == "slow":
        time.sleep(params.get("delay", 0.5))
        return "done"
    raise RpcMethodNotFound(f"unknown method {method!r}")


@pytest.fixture()
def server():
    srv = RpcServer(echo_handler).start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    with RpcClient(server.address, timeout_s=5.0) as cli:
        yield cli


# --------------------------------------------------------------------- #
# addresses
# --------------------------------------------------------------------- #
def test_parse_address_tcp_and_unix():
    assert parse_address("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")


@pytest.mark.parametrize("bad", ["", "nohost", "host:port", "unix:", ":123", 7])
def test_parse_address_rejects_garbage(bad):
    with pytest.raises(ConfigurationError):
        parse_address(bad)


def test_server_reports_real_port():
    srv = RpcServer(echo_handler)
    try:
        host, port = srv.address.rsplit(":", 1)
        assert host == "127.0.0.1"
        assert int(port) > 0
    finally:
        srv.close()


# --------------------------------------------------------------------- #
# round trips
# --------------------------------------------------------------------- #
def test_call_round_trip(client):
    assert client.call("echo", {"x": 1, "y": [1, 2, 3]}) == {"x": 1, "y": [1, 2, 3]}
    assert client.call("add", {"a": 2, "b": 40}) == 42


def test_numpy_scalars_serialise(client):
    result = client.call(
        "echo",
        {"i": np.int64(7), "f": np.float64(1.5), "b": np.bool_(True),
         "arr": np.arange(3)},
    )
    assert result == {"i": 7, "f": 1.5, "b": True, "arr": [0, 1, 2]}


def test_nan_telemetry_round_trips(client):
    # A faulted node reports NaN p99; the degraded path depends on it
    # surviving the wire.
    result = client.call("echo", {"p99_ms": float("nan"), "inf": float("inf")})
    assert np.isnan(result["p99_ms"])
    assert np.isinf(result["inf"])


def test_unix_socket_transport(tmp_path):
    path = tmp_path / "rpc.sock"
    srv = RpcServer(echo_handler, bind=f"unix:{path}").start()
    try:
        assert srv.address == f"unix:{path}"
        with RpcClient(srv.address) as cli:
            assert cli.call("add", {"a": 1, "b": 2}) == 3
    finally:
        srv.close()
    assert not path.exists(), "unix socket file must be unlinked on close"


def test_concurrent_calls_correlate_out_of_order(server):
    # A slow call and fast calls share one client; ids keep them straight.
    with RpcClient(server.address, timeout_s=10.0) as cli:
        results = {}

        def slow():
            results["slow"] = cli.call("slow", {"delay": 0.4})

        thread = threading.Thread(target=slow)
        thread.start()
        time.sleep(0.05)  # let the slow request hit the wire first
        for i in range(5):
            assert cli.call("add", {"a": i, "b": 1}) == i + 1
        thread.join(5.0)
        assert results["slow"] == "done"


# --------------------------------------------------------------------- #
# error mapping
# --------------------------------------------------------------------- #
def test_unknown_method_maps_to_method_not_found(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("nope")
    assert err.value.code == METHOD_NOT_FOUND


def test_invalid_params_code(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("bad_params")
    assert err.value.code == INVALID_PARAMS


def test_domain_error_maps_to_server_error(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("boom")
    assert err.value.code == SERVER_ERROR
    assert "domain failure" in str(err.value)


def test_handler_bug_maps_to_internal_error_and_names_type(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("bug")
    assert err.value.code == INTERNAL_ERROR
    assert "KeyError" in str(err.value)


def test_handler_bug_does_not_kill_the_server(client):
    with pytest.raises(RpcRemoteError):
        client.call("bug")
    assert client.call("add", {"a": 1, "b": 1}) == 2


# --------------------------------------------------------------------- #
# raw-wire behaviour (bad frames, notifications)
# --------------------------------------------------------------------- #
def _raw_exchange(address, payload: bytes) -> dict:
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=5.0) as sock:
        sock.sendall(payload)
        line = sock.makefile("rb").readline()
    return json.loads(line)


def test_parse_error_frame(server):
    response = _raw_exchange(server.address, b"this is not json\n")
    assert response["error"]["code"] == PARSE_ERROR


def test_invalid_request_frames(server):
    response = _raw_exchange(server.address, b'{"id": 1, "method": "echo"}\n')
    assert response["error"]["code"] == INVALID_REQUEST  # missing jsonrpc
    response = _raw_exchange(
        server.address, b'{"jsonrpc": "2.0", "id": 2, "method": 5}\n'
    )
    assert response["error"]["code"] == INVALID_REQUEST  # non-string method
    response = _raw_exchange(
        server.address,
        b'{"jsonrpc": "2.0", "id": 3, "method": "echo", "params": [1]}\n',
    )
    assert response["error"]["code"] == INVALID_PARAMS  # non-object params


def test_notification_gets_no_response_even_on_error(server):
    host, port = server.address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=5.0) as sock:
        # No id => notification; the error is swallowed per spec, and the
        # next real call still answers on the same connection.
        sock.sendall(b'{"jsonrpc": "2.0", "method": "bug"}\n')
        sock.sendall(
            b'{"jsonrpc": "2.0", "id": 9, "method": "add",'
            b' "params": {"a": 1, "b": 2}}\n'
        )
        response = json.loads(sock.makefile("rb").readline())
    assert response["id"] == 9
    assert response["result"] == 3


def test_client_notify_is_fire_and_forget(client):
    client.notify("bug")  # would raise server-side; no response expected
    assert client.call("add", {"a": 5, "b": 5}) == 10


# --------------------------------------------------------------------- #
# timeouts and teardown
# --------------------------------------------------------------------- #
def test_call_timeout_raises_rpc_timeout(server):
    with RpcClient(server.address, timeout_s=5.0) as cli:
        with pytest.raises(RpcTimeout):
            cli.call("slow", {"delay": 2.0}, timeout_s=0.1)
        # The connection survives a timed-out call.
        assert cli.call("add", {"a": 1, "b": 1}) == 2


def test_nonpositive_timeouts_rejected(server):
    with pytest.raises(ConfigurationError):
        RpcClient(server.address, timeout_s=0)
    with RpcClient(server.address) as cli:
        with pytest.raises(ConfigurationError):
            cli.call("echo", timeout_s=-1)


def test_connect_to_dead_server_raises_rpc_error():
    srv = RpcServer(echo_handler)
    address = srv.address
    srv.close()
    with pytest.raises(RpcError):
        RpcClient(address, timeout_s=0.5)


def test_server_close_fails_inflight_calls_promptly(server):
    cli = RpcClient(server.address, timeout_s=30.0)
    errors = []

    def waiter():
        try:
            cli.call("slow", {"delay": 30.0})
        except RpcError as exc:  # includes RpcTimeout
            errors.append(exc)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.1)
    server.close()
    thread.join(5.0)
    assert not thread.is_alive(), "in-flight call must not hang on close"
    assert errors and not isinstance(errors[0], RpcTimeout)
    cli.close()


def test_calls_after_close_raise(client):
    client.close()
    with pytest.raises(RpcError):
        client.call("echo")


def test_server_close_is_idempotent(server):
    server.close()
    server.close()
