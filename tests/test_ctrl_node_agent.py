"""TwigNodeAgent: wire codecs, serving RPCs, policy updates, faults."""

import numpy as np
import pytest

from repro.core.config import TwigConfig
from repro.core.twig import Twig
from repro.ctrl.node_agent import (
    TwigNodeAgent,
    assignments_to_wire,
    step_result_to_wire,
    wire_to_assignments,
    wire_to_step_result,
)
from repro.ctrl.rpc import (
    INVALID_PARAMS,
    SERVER_ERROR,
    RpcClient,
    RpcInvalidParams,
    RpcRemoteError,
)
from repro.errors import ControlPlaneError
from repro.experiments.common import make_environment
from repro.services.profiles import get_profile
from repro.sim.faults import Fault, FaultInjector

SERVICES = ["masstree", "xapian"]


def make_env(seed=11):
    return make_environment(SERVICES, [0.5, 0.4], seed=seed)


def initial_assignments():
    """All-cores-at-max-DVFS starting assignments (what Twig starts from)."""
    twig = Twig(
        [get_profile(s) for s in SERVICES],
        TwigConfig.fast(),
        np.random.default_rng(0),
    )
    return twig.initial_assignments()


@pytest.fixture()
def agent():
    with TwigNodeAgent("n0", SERVICES, seed=3) as node:
        yield node


@pytest.fixture()
def client(agent):
    with RpcClient(agent.address, timeout_s=10.0) as cli:
        yield cli


# --------------------------------------------------------------------- #
# wire codecs
# --------------------------------------------------------------------- #
def test_step_result_round_trips_through_wire():
    env = make_env()
    result = env.step(initial_assignments())
    decoded = wire_to_step_result(step_result_to_wire(result))
    assert decoded.time == result.time
    assert decoded.socket_power_w == result.socket_power_w
    assert set(decoded.observations) == set(result.observations)
    for name, obs in result.observations.items():
        assert decoded.observations[name].interval == obs.interval
        assert decoded.observations[name].pmcs == obs.pmcs


def test_step_result_wire_preserves_nan():
    env = make_env()
    result = env.step(initial_assignments())
    injector = FaultInjector([Fault("pmc_dropout", "masstree", start=1)])
    observations, applied = injector.apply(result.time, result.observations, {})
    assert applied
    import dataclasses

    faulted = dataclasses.replace(result, observations=observations)
    decoded = wire_to_step_result(step_result_to_wire(faulted))
    assert all(
        np.isnan(v) for v in decoded.observations["masstree"].pmcs.values()
    )


def test_wire_to_step_result_rejects_malformed():
    with pytest.raises(RpcInvalidParams):
        wire_to_step_result({"time": 1})
    env = make_env()
    wire = step_result_to_wire(env.step(initial_assignments()))
    wire["observations"]["masstree"]["interval"]["bogus_field"] = 1.0
    with pytest.raises(RpcInvalidParams):
        wire_to_step_result(wire)


def test_assignments_round_trip():
    env = make_env()
    assignments = initial_assignments()
    decoded = wire_to_assignments(assignments_to_wire(assignments))
    assert decoded == assignments
    with pytest.raises(RpcInvalidParams):
        wire_to_assignments({"svc": {"cores": [1]}})  # missing freq_index


# --------------------------------------------------------------------- #
# serving RPCs
# --------------------------------------------------------------------- #
def test_describe_and_allocate(client):
    described = client.call("describe")
    assert described["node_id"] == "n0"
    assert described["services"] == SERVICES
    assert described["policy_version"] == 0
    allocation = client.call("allocate")
    assignments = wire_to_assignments(allocation["assignments"])
    assert set(assignments) == set(SERVICES)
    assert all(a.cores for a in assignments.values())


def test_report_interval_drives_twig_and_returns_assignments(agent, client):
    env = make_env()
    assignments = initial_assignments()
    for _ in range(3):
        result = env.step(assignments)
        reply = client.call(
            "report_interval", {"result": step_result_to_wire(result)}
        )
        assert reply["time"] == result.time
        assignments = wire_to_assignments(reply["assignments"])
        assert set(assignments) == set(SERVICES)
    # The serving path reflects the last update.
    allocation = client.call("allocate")
    assert wire_to_assignments(allocation["assignments"]) == assignments
    assert client.call("describe")["last_interval"] == result.time


def test_report_interval_requires_result_param(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("report_interval")
    assert err.value.code == INVALID_PARAMS


def test_faulted_telemetry_holds_allocation_over_the_wire(agent, client):
    # NaN telemetry from a faulted service must survive the wire and take
    # Twig's hold-last-allocation path, not corrupt the policy.
    import dataclasses

    env = make_env()
    result = env.step(initial_assignments())
    before = wire_to_assignments(client.call("allocate")["assignments"])
    injector = FaultInjector([Fault("pmc_dropout", "masstree", start=1,
                                    duration=10)])
    observations, applied = injector.apply(result.time, result.observations, {})
    assert applied
    faulted = dataclasses.replace(result, observations=observations)
    reply = client.call("report_interval", {"result": step_result_to_wire(faulted)})
    held = wire_to_assignments(reply["assignments"])
    assert held == before  # degraded: last known-good allocation held
    assert agent.twig._prev_state is None  # transition chain broken


# --------------------------------------------------------------------- #
# update_policy
# --------------------------------------------------------------------- #
def _train_checkpoint(tmp_path, steps=3):
    """A tiny trained Twig checkpoint (PR-5-era save format)."""
    twig = Twig(
        [get_profile(s) for s in SERVICES],
        TwigConfig.fast(),
        np.random.default_rng(123),
    )
    env = make_env(seed=29)
    assignments = twig.initial_assignments()
    for _ in range(steps):
        assignments = twig.update(env.step(assignments))
    path = tmp_path / "policy.npz"
    twig.save(path)
    return path


def test_update_policy_installs_checkpoint(agent, client, tmp_path):
    path = _train_checkpoint(tmp_path)
    reply = client.call("update_policy", {"path": str(path), "version": 1})
    assert reply == {"node_id": "n0", "policy_version": 1}
    assert agent.policy_version == 1
    assert client.call("describe")["policy_version"] == 1


def test_update_policy_rejects_non_advancing_version(agent, client, tmp_path):
    path = _train_checkpoint(tmp_path)
    client.call("update_policy", {"path": str(path), "version": 2})
    for stale in (0, 1, 2):
        with pytest.raises(RpcRemoteError) as err:
            client.call("update_policy", {"path": str(path), "version": stale})
        assert err.value.code == SERVER_ERROR
    assert agent.policy_version == 2


def test_update_policy_refuses_torn_checkpoint(agent, client, tmp_path):
    path = _train_checkpoint(tmp_path)
    torn = tmp_path / "torn.npz"
    data = path.read_bytes()
    torn.write_bytes(data[: len(data) // 2])
    before_params = [p.value.copy() for p in agent.twig.agent.online.parameters()]
    with pytest.raises(RpcRemoteError) as err:
        client.call("update_policy", {"path": str(torn), "version": 5})
    assert err.value.code == SERVER_ERROR
    # The staged load refused before mutating anything: version and
    # serving policy are untouched.
    assert agent.policy_version == 0
    after_params = [p.value for p in agent.twig.agent.online.parameters()]
    for before, after in zip(before_params, after_params):
        np.testing.assert_array_equal(before, after)


def test_update_policy_param_validation(client):
    with pytest.raises(RpcRemoteError) as err:
        client.call("update_policy", {"version": 1})
    assert err.value.code == INVALID_PARAMS
    with pytest.raises(RpcRemoteError) as err:
        client.call("update_policy", {"path": "x.npz"})
    assert err.value.code == INVALID_PARAMS


# --------------------------------------------------------------------- #
# lifecycle plumbing
# --------------------------------------------------------------------- #
def test_heartbeat_before_join_raises(agent):
    with pytest.raises(ControlPlaneError):
        agent.heartbeat_once()


def test_shutdown_rpc_closes_the_server(agent):
    with RpcClient(agent.address, timeout_s=10.0) as cli:
        assert cli.call("shutdown") == {"ok": True}
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            with RpcClient(agent.address, timeout_s=0.2) as probe:
                probe.call("ping", timeout_s=0.2)
        except Exception:
            return  # server is down
        time.sleep(0.05)
    pytest.fail("node agent server still serving after shutdown RPC")
