"""Unit tests for the load generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.services.loadgen import (
    ConstantLoad,
    DiurnalLoad,
    StepwiseVaryingLoad,
    TraceLoad,
)


def test_constant_load_fraction():
    gen = ConstantLoad(1000.0, 0.5, jitter_std=0.0)
    assert gen.rate(0) == pytest.approx(500.0)
    assert gen.rate(999) == pytest.approx(500.0)


def test_constant_load_jitter_centered():
    gen = ConstantLoad(1000.0, 0.5, rng=np.random.default_rng(0), jitter_std=0.05)
    rates = [gen.rate(t) for t in range(500)]
    assert abs(np.mean(rates) - 500.0) < 10.0
    assert np.std(rates) > 0


def test_stepwise_cycle_shape():
    """Rises by the change factor to max, then falls back (Figure 10)."""
    gen = StepwiseVaryingLoad(
        1000.0, min_fraction=0.2, max_fraction=1.0, change_factor=1.2,
        step_every=10, jitter_std=0.0,
    )
    levels = [gen.fraction(t * 10) for t in range(len(gen._levels))]
    peak = max(levels)
    assert peak == pytest.approx(1.0)
    assert levels[0] == pytest.approx(0.2)
    rising = levels[: levels.index(peak) + 1]
    assert rising == sorted(rising)
    falling = levels[levels.index(peak):]
    assert falling == sorted(falling, reverse=True)


def test_stepwise_holds_between_changes():
    gen = StepwiseVaryingLoad(1000.0, step_every=200, jitter_std=0.0)
    assert gen.fraction(0) == gen.fraction(199)
    assert gen.fraction(200) != gen.fraction(199)


def test_stepwise_average_constant_across_changes():
    """Successive levels differ exactly by the change factor."""
    gen = StepwiseVaryingLoad(1000.0, change_factor=1.2, step_every=1, jitter_std=0.0)
    levels = gen._levels
    for a, b in zip(levels, levels[1:]):
        ratio = max(a, b) / min(a, b)
        assert ratio <= 1.2 + 1e-9


def test_diurnal_oscillates_within_bounds():
    gen = DiurnalLoad(1000.0, min_fraction=0.2, max_fraction=0.9, period=100, jitter_std=0.0)
    fractions = [gen.fraction(t) for t in range(200)]
    assert min(fractions) >= 0.2 - 1e-9
    assert max(fractions) <= 0.9 + 1e-9
    assert max(fractions) - min(fractions) > 0.6  # actually swings


def test_diurnal_periodicity():
    gen = DiurnalLoad(1000.0, period=50, jitter_std=0.0)
    assert gen.fraction(10) == pytest.approx(gen.fraction(60))


def test_trace_load_clamps():
    gen = TraceLoad(100.0, [0.1, 0.5, 1.0], jitter_std=0.0)
    assert gen.rate(0) == pytest.approx(10.0)
    assert gen.rate(2) == pytest.approx(100.0)
    assert gen.rate(99) == pytest.approx(100.0)  # clamped to last


def test_rate_never_negative():
    gen = ConstantLoad(10.0, 0.01, rng=np.random.default_rng(0), jitter_std=2.0)
    assert all(gen.rate(t) >= 0.0 for t in range(200))


def test_validation():
    with pytest.raises(ConfigurationError):
        ConstantLoad(0.0, 0.5)
    with pytest.raises(ConfigurationError):
        ConstantLoad(100.0, 2.0)
    with pytest.raises(ConfigurationError):
        StepwiseVaryingLoad(100.0, min_fraction=0.9, max_fraction=0.5)
    with pytest.raises(ConfigurationError):
        StepwiseVaryingLoad(100.0, change_factor=1.0)
    with pytest.raises(ConfigurationError):
        DiurnalLoad(100.0, period=0)
    with pytest.raises(ConfigurationError):
        TraceLoad(100.0, [])
