"""Tests for run manifests: hashing determinism, round-trip, git SHA."""

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs.manifest import RunManifest, config_hash, git_sha


@dataclass(frozen=True)
class _Config:
    seed: int = 7
    steps: int = 100
    name: str = "fig07"


def test_config_hash_deterministic():
    assert config_hash(_Config()) == config_hash(_Config())
    assert config_hash(None) == config_hash(None)
    assert config_hash({"b": 2, "a": 1}) == config_hash({"a": 1, "b": 2})


def test_config_hash_sensitive_to_values():
    assert config_hash(_Config(seed=7)) != config_hash(_Config(seed=8))
    assert config_hash(_Config()) != config_hash(None)


def test_config_hash_handles_nested_and_exotic_values():
    a = config_hash({"x": [1, 2, (3, 4)], "y": _Config()})
    b = config_hash({"x": [1, 2, (3, 4)], "y": _Config()})
    assert a == b
    # non-JSON values fall back to repr() rather than failing
    assert config_hash({"f": float}) == config_hash({"f": float})


def test_manifest_round_trip(tmp_path):
    manifest = RunManifest(
        experiment_id="fig07",
        seed=7,
        config_hash=config_hash(_Config()),
        git_sha="abc123",
        started_at="2026-08-06T00:00:00+00:00",
        wall_time_s=1.5,
        summary={"result_type": "Fig07Result"},
        timings={"env.step": {"count": 10, "total_s": 0.1}},
        trace_path="runs/fig07/trace.jsonl",
        trace_events=42,
    )
    path = manifest.write(tmp_path / "deep" / "manifest.json")
    loaded = RunManifest.read(path)
    assert loaded == manifest


def test_comparable_dict_drops_only_timing_fields():
    a = RunManifest(
        experiment_id="fig07",
        started_at="2026-08-06T00:00:00+00:00",
        wall_time_s=1.5,
        timings={"env.step": {"count": 10, "total_s": 0.1}},
    )
    b = RunManifest(
        experiment_id="fig07",
        started_at="2026-08-06T09:99:99+00:00",
        wall_time_s=9.9,
        timings={"env.step": {"count": 10, "total_s": 0.9}},
    )
    # Same run modulo timing: comparable views agree, raw dicts do not.
    assert a.comparable_dict() == b.comparable_dict()
    assert a.to_dict() != b.to_dict()
    for field in RunManifest.TIMING_FIELDS:
        assert field not in a.comparable_dict()
        assert field in a.to_dict()
    # A substantive difference still shows up.
    c = RunManifest(experiment_id="fig07", status="failed", error="boom")
    assert a.comparable_dict() != c.comparable_dict()


def test_manifest_rejects_bad_status():
    with pytest.raises(ConfigurationError):
        RunManifest(experiment_id="x", status="partial")


def test_manifest_read_rejects_unknown_fields(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text('{"experiment_id": "x", "bogus": 1}')
    with pytest.raises(ConfigurationError, match="unknown fields"):
        RunManifest.read(path)


def test_manifest_read_missing_file():
    with pytest.raises(ConfigurationError, match="not found"):
        RunManifest.read("/nonexistent/manifest.json")


def test_git_sha_of_this_repo():
    sha = git_sha(Path(__file__).resolve().parent)
    # The reproduction lives in a git repo, so this must resolve.
    assert sha is not None
    assert len(sha) == 40


def test_git_sha_outside_a_repo(tmp_path):
    assert git_sha(tmp_path) is None
