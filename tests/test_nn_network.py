"""Unit tests for repro.nn.network (MLP, save/load, transfer reset)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import MLP, Adam, mse_loss
from repro.nn.network import (
    copy_parameters,
    load_weights,
    parameter_bytes,
    save_weights,
)


def test_mlp_needs_two_sizes(rng):
    with pytest.raises(ConfigurationError):
        MLP([4], rng)


def test_mlp_learns_nonlinear_function(rng):
    net = MLP([2, 32, 32, 1], rng)
    opt = Adam(net.parameters(), learning_rate=5e-3)
    x = rng.uniform(-1, 1, size=(256, 2))
    y = (x[:, :1] * x[:, 1:]) + 0.3
    first = None
    for _ in range(400):
        pred = net.forward(x, training=True)
        loss, grad = mse_loss(pred, y)
        if first is None:
            first = loss
        net.backward(grad)
        opt.step()
        opt.zero_grad()
    assert loss < 0.05 * first


def test_mlp_dropout_only_in_training(rng):
    net = MLP([4, 16, 1], rng, dropout=0.5)
    x = rng.normal(size=(8, 4))
    a = net.forward(x, training=False)
    b = net.forward(x, training=False)
    assert np.array_equal(a, b)


def test_reinitialize_output_changes_only_last_layer(rng):
    net = MLP([4, 8, 2], rng)
    hidden_before = net.layers[0].weight.value.copy()
    out_before = net.output_layer.weight.value.copy()
    net.reinitialize_output(rng)
    assert np.array_equal(net.layers[0].weight.value, hidden_before)
    assert not np.array_equal(net.output_layer.weight.value, out_before)
    assert np.all(net.output_layer.bias.value == 0)


def test_save_load_roundtrip(tmp_path, rng):
    net = MLP([3, 8, 2], rng)
    other = MLP([3, 8, 2], np.random.default_rng(99))
    path = tmp_path / "weights.npz"
    save_weights(net.parameters(), path)
    load_weights(other.parameters(), path)
    x = rng.normal(size=(5, 3))
    assert np.allclose(net.forward(x), other.forward(x))


def test_save_load_roundtrip_suffixless_path(tmp_path, rng):
    """Regression: ``np.savez`` appends ``.npz`` to suffix-less paths but
    loading used the raw path, so a save/load pair with the same path
    argument failed with FileNotFoundError."""
    net = MLP([3, 8, 2], rng)
    other = MLP([3, 8, 2], np.random.default_rng(99))
    path = tmp_path / "weights"  # no suffix on either side
    save_weights(net.parameters(), path)
    load_weights(other.parameters(), path)
    x = rng.normal(size=(5, 3))
    assert np.allclose(net.forward(x), other.forward(x))
    assert (tmp_path / "weights.npz").exists()


def test_load_rejects_wrong_architecture(tmp_path, rng):
    net = MLP([3, 8, 2], rng)
    path = tmp_path / "weights.npz"
    save_weights(net.parameters(), path)
    wrong = MLP([3, 9, 2], rng)
    with pytest.raises(ShapeError):
        load_weights(wrong.parameters(), path)


def test_copy_parameters(rng):
    a = MLP([3, 4, 1], rng)
    b = MLP([3, 4, 1], np.random.default_rng(5))
    copy_parameters(a.parameters(), b.parameters())
    x = rng.normal(size=(2, 3))
    assert np.allclose(a.forward(x), b.forward(x))


def test_copy_parameters_shape_mismatch(rng):
    a = MLP([3, 4, 1], rng)
    b = MLP([3, 5, 1], rng)
    with pytest.raises(ShapeError):
        copy_parameters(a.parameters(), b.parameters())


def test_parameter_bytes(rng):
    net = MLP([3, 4, 1], rng)
    # (3*4 + 4) + (4*1 + 1) float64 values
    assert parameter_bytes(net.parameters()) == (12 + 4 + 4 + 1) * 8
