"""ShardedClusterEnvironment: bit-identity with the in-process vector engine.

The shard engine moves only the fused node simulation into worker
processes; traffic, balancing, and the manager's act/train path stay in
the parent with the exact same RNG streams. Every test here therefore
demands *exact* equality — trajectories, state trees, and checkpoint
bytes — not closeness.
"""

import zipfile

import numpy as np
import pytest

from repro.cluster.environment import ClusterEnvironment
from repro.core.config import TwigConfig
from repro.engine.fleet import FleetTwig
from repro.engine.rollout import RUN_CKPT_NAME, run_fleet
from repro.engine.sharded import ShardedClusterEnvironment
from repro.errors import CheckpointError, ConfigurationError
from repro.hier import BudgetConfig, HierFleetTwig
from repro.obs.sink import MemorySink
from repro.services.profiles import get_profile
from repro.sim.faults import Fault, FaultInjector

SERVICES = ["masstree", "xapian"]


def _make_manager(num_nodes, seed=7, hier=False):
    profiles = [get_profile(s) for s in SERVICES]
    config = TwigConfig.fast(epsilon_mid_steps=10, epsilon_final_steps=20)
    if hier:
        manager = HierFleetTwig(
            profiles,
            config,
            np.random.default_rng(seed + 1),
            num_envs=num_nodes,
            budget=BudgetConfig(period=4),
            allocator_rng=np.random.default_rng(seed + 2),
        )
    else:
        manager = FleetTwig(
            profiles,
            config,
            np.random.default_rng(seed + 1),
            num_envs=num_nodes,
        )
    manager.index_tag = "node"
    return manager


def _make_env(engine, num_nodes, seed=7, balancer="least_loaded", workers=2):
    kwargs = dict(
        num_nodes=num_nodes, seed=seed, traffic="diurnal", balancer=balancer
    )
    if engine == "shard":
        return ShardedClusterEnvironment.from_services(
            SERVICES, workers=workers, **kwargs
        )
    return ClusterEnvironment.from_services(SERVICES, **kwargs)


def _series_equal(a, b):
    """Exact equality for float time series, treating NaN == NaN (crash
    faults legitimately put NaNs in the p99 trace)."""
    return np.array_equal(
        np.asarray(a, dtype=np.float64),
        np.asarray(b, dtype=np.float64),
        equal_nan=True,
    )


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    for e, (ta, tb) in enumerate(zip(a, b)):
        assert ta.manager_name == tb.manager_name
        assert ta.interval_s == tb.interval_s
        assert _series_equal(ta.power_w, tb.power_w), e
        assert _series_equal(ta.true_power_w, tb.true_power_w), e
        assert _series_equal(ta.membw_utilization, tb.membw_utilization), e
        assert dict(ta.migrations) == dict(tb.migrations), e
        assert set(ta.services) == set(tb.services), e
        for name in ta.services:
            sa, sb = ta.services[name], tb.services[name]
            assert sa.qos_target_ms == sb.qos_target_ms, (e, name)
            assert _series_equal(sa.p99_ms, sb.p99_ms), (e, name)
            assert _series_equal(sa.arrival_rps, sb.arrival_rps), (e, name)
            assert _series_equal(sa.cores, sb.cores), (e, name)
            assert _series_equal(sa.frequency_ghz, sb.frequency_ghz), (e, name)


def _assert_tree_equal(a, b, path="root"):
    """Exact (bitwise for arrays) equality of two checkpoint trees."""
    if isinstance(a, dict):
        assert isinstance(b, dict), path
        assert set(a) == set(b), path
        for key in a:
            _assert_tree_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype, path
        assert a.shape == b.shape, path
        assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), path
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_tree_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, path


def _run_pair(num_nodes, steps, workers, balancer="least_loaded", seed=7):
    """Run the same fleet through both engines; return (vec, shard) pieces."""
    results = {}
    for engine in ("vector", "shard"):
        manager = _make_manager(num_nodes, seed=seed)
        venv = _make_env(engine, num_nodes, seed=seed, balancer=balancer,
                         workers=workers)
        try:
            traces = run_fleet(manager, venv, steps)
            results[engine] = (traces, venv.state_dict(), manager.state_dict())
        finally:
            venv.close()
    return results["vector"], results["shard"]


class TestTrajectoryIdentity:
    def test_traces_states_match_vector(self):
        vec, shard = _run_pair(num_nodes=6, steps=10, workers=3)
        _assert_traces_equal(vec[0], shard[0])
        _assert_tree_equal(vec[1], shard[1])
        _assert_tree_equal(vec[2], shard[2])

    def test_uneven_shards(self):
        # 5 nodes over 2 workers: shard bounds 3 + 2, like np.array_split.
        vec, shard = _run_pair(
            num_nodes=5, steps=8, workers=2, balancer="power_of_two"
        )
        _assert_traces_equal(vec[0], shard[0])
        _assert_tree_equal(vec[1], shard[1])

    def test_workers_clamped_to_nodes(self):
        venv = _make_env("shard", num_nodes=2, workers=8)
        try:
            assert venv.workers == 2
            vec, shard = None, None
        finally:
            venv.close()
        vec, shard = _run_pair(num_nodes=2, steps=6, workers=8)
        _assert_traces_equal(vec[0], shard[0])

    def test_single_worker(self):
        vec, shard = _run_pair(num_nodes=3, steps=6, workers=1)
        _assert_traces_equal(vec[0], shard[0])
        _assert_tree_equal(vec[1], shard[1])

    def test_migration_counts_match(self):
        results = {}
        for engine in ("vector", "shard"):
            manager = _make_manager(4)
            venv = _make_env(engine, 4, workers=2)
            try:
                run_fleet(manager, venv, 6)
                results[engine] = venv.migration_counts()
            finally:
                venv.close()
        vec = [dict(c) for c in results["vector"]]
        shard = [dict(c) for c in results["shard"]]
        assert vec == shard


class TestFaults:
    def test_degraded_node_inside_shard(self):
        # A pmc_nan + service_crash burst on node 2 must degrade the node,
        # shed its traffic, and stay bit-identical across engines: the
        # fault injector RNG lives with the node in its worker.
        def faults():
            return [
                Fault(kind="pmc_nan", service="masstree", start=2, duration=3),
                Fault(kind="service_crash", service="xapian", start=4, duration=2),
            ]

        results = {}
        for engine in ("vector", "shard"):
            manager = _make_manager(5)
            venv = _make_env(engine, 5, workers=2, balancer="power_of_two")
            try:
                injector = FaultInjector(faults(), np.random.default_rng(99))
                if engine == "shard":
                    venv.install_faults(2, injector)
                else:
                    venv.envs[2].faults = injector
                traces = run_fleet(manager, venv, 8)
                results[engine] = (traces, venv.state_dict())
            finally:
                venv.close()
        _assert_traces_equal(results["vector"][0], results["shard"][0])
        _assert_tree_equal(results["vector"][1], results["shard"][1])

    def test_install_faults_bounds(self):
        venv = _make_env("shard", num_nodes=3, workers=2)
        try:
            with pytest.raises(ConfigurationError):
                venv.install_faults(3, FaultInjector([]))
        finally:
            venv.close()


class TestCheckpoints:
    def _run_with_ckpt(self, engine, directory, steps=8, every=4):
        manager = _make_manager(4)
        venv = _make_env(engine, 4, workers=2)
        try:
            traces = run_fleet(
                manager, venv, steps, checkpoint_every=every,
                checkpoint_dir=directory,
            )
        finally:
            venv.close()
        return traces

    def test_checkpoint_bytes_identical(self, tmp_path):
        a, b = tmp_path / "vec", tmp_path / "shard"
        a.mkdir(), b.mkdir()
        self._run_with_ckpt("vector", a)
        self._run_with_ckpt("shard", b)
        with zipfile.ZipFile(a / RUN_CKPT_NAME) as za, zipfile.ZipFile(
            b / RUN_CKPT_NAME
        ) as zb:
            assert za.namelist() == zb.namelist()
            for name in za.namelist():
                assert za.read(name) == zb.read(name), name

    def test_cross_engine_resume(self, tmp_path):
        # A shard env resuming a vector-engine run checkpoint must land
        # on the same trajectory as an uninterrupted vector run.
        full_dir = tmp_path / "full"
        half_dir = tmp_path / "half"
        full_dir.mkdir(), half_dir.mkdir()
        full = self._run_with_ckpt("vector", full_dir, steps=8, every=4)
        # The half-run file holds the t=4 mid-flight checkpoint (the
        # final-step checkpoint is skipped by run_fleet).
        self._run_with_ckpt("vector", half_dir, steps=8, every=4)

        manager = _make_manager(4)
        venv = _make_env("shard", 4, workers=2)
        try:
            resumed = run_fleet(
                manager, venv, 8, resume_from=half_dir / RUN_CKPT_NAME
            )
        finally:
            venv.close()
        _assert_traces_equal(full, resumed)

    def test_load_rejects_wrong_shape(self):
        venv = _make_env("shard", num_nodes=3, workers=2)
        other = _make_env("vector", num_nodes=4)
        try:
            with pytest.raises(CheckpointError):
                venv.load_state_dict(other.state_dict())
            with pytest.raises(CheckpointError):
                venv.load_state_dict({"num_envs": 3})
        finally:
            venv.close()


class TestHier:
    def test_hier_budgets_and_traces_match(self):
        results = {}
        for engine in ("vector", "shard"):
            manager = _make_manager(4, hier=True)
            venv = _make_env(engine, 4, workers=2)
            try:
                traces = run_fleet(manager, venv, 9)
                results[engine] = (
                    traces, manager.budgets.copy(), manager.state_dict()
                )
            finally:
                venv.close()
        _assert_traces_equal(results["vector"][0], results["shard"][0])
        assert np.array_equal(results["vector"][1], results["shard"][1])
        _assert_tree_equal(results["vector"][2], results["shard"][2])


class TestSurfaceAndErrors:
    def test_rejects_enabled_trace_sink(self):
        venv = _make_env("shard", num_nodes=2, workers=2)
        try:
            with pytest.raises(ConfigurationError, match="engine vector"):
                venv.set_trace_sink(MemorySink())
        finally:
            venv.close()

    def test_step_after_close_raises(self):
        venv = _make_env("shard", num_nodes=2, workers=2)
        venv.close()
        venv.close()  # idempotent
        with pytest.raises(ConfigurationError):
            venv.step([{} for _ in range(2)])

    def test_qos_target_of(self):
        venv = _make_env("shard", num_nodes=2, workers=2)
        try:
            assert venv.qos_target_of("masstree") == get_profile(
                "masstree"
            ).qos_target_ms
            with pytest.raises(ConfigurationError):
                venv.qos_target_of("nope")
        finally:
            venv.close()

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedClusterEnvironment.from_services(
                SERVICES, num_nodes=2, seed=1, workers=0
            )
        with pytest.raises(ConfigurationError):
            ShardedClusterEnvironment.from_services(
                SERVICES, num_nodes=0, seed=1
            )


class TestExperimentConfigs:
    def test_cluster_config_accepts_shard(self):
        from repro.experiments.cluster import ClusterConfig

        config = ClusterConfig(engine="shard", workers=2)
        assert config.workers == 2
        with pytest.raises(ConfigurationError):
            ClusterConfig(engine="shard", workers=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(engine="threads")

    def test_hier_config_accepts_shard(self):
        from repro.experiments.hier import HierConfig

        HierConfig(engine="shard", workers=2)
        with pytest.raises(ConfigurationError):
            HierConfig(engine="scalar")
        with pytest.raises(ConfigurationError):
            HierConfig(engine="shard", workers=0)

    def test_cluster_config_rejects_more_workers_than_nodes(self):
        from repro.experiments.cluster import ClusterConfig

        with pytest.raises(ConfigurationError, match="exceeds num_nodes"):
            ClusterConfig(engine="shard", num_nodes=2, workers=3)
        # The vector engine has no workers, so the check must not fire.
        ClusterConfig(engine="vector", num_nodes=2, workers=3)

    def test_hier_config_rejects_more_workers_than_nodes(self):
        from repro.experiments.hier import HierConfig

        with pytest.raises(ConfigurationError, match="exceeds num_nodes"):
            HierConfig(engine="shard", num_nodes=2, workers=3)
        HierConfig(engine="vector", num_nodes=2, workers=3)


# A child script that creates a sharded environment, reports the shm
# segment name on stdout, then idles (the test decides how it dies).
_PARENT_SCRIPT = """
import sys, time
from repro.engine.sharded import ShardedClusterEnvironment

venv = ShardedClusterEnvironment.from_services(
    ["masstree", "xapian"], num_nodes=2, seed=3, workers=2
)
print(venv._shm.name, flush=True)
mode = sys.argv[1]
if mode == "exit-without-close":
    sys.exit(0)  # atexit hook must unlink the segment
# mode == "idle": wait to be killed from outside
time.sleep(120)
"""


def _segment_path(name):
    import pathlib

    return pathlib.Path("/dev/shm") / name.lstrip("/")


def _wait_for_unlink(name, timeout_s=30.0):
    import time

    path = _segment_path(name)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not path.exists():
            return True
        time.sleep(0.2)
    return not path.exists()


@pytest.mark.skipif(
    not __import__("pathlib").Path("/dev/shm").is_dir(),
    reason="needs a POSIX /dev/shm to observe segment lifetimes",
)
class TestSegmentLifecycle:
    def test_close_unlinks_segment(self):
        venv = _make_env("shard", num_nodes=2, workers=2)
        name = venv._shm.name
        assert _segment_path(name).exists()
        venv.close()
        assert not _segment_path(name).exists()
        venv.close()  # idempotent

    def test_parent_exit_without_close_unlinks_segment(self, tmp_path):
        import subprocess
        import sys

        script = tmp_path / "parent.py"
        script.write_text(_PARENT_SCRIPT)
        proc = subprocess.run(
            [sys.executable, str(script), "exit-without-close"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip().splitlines()[0]
        assert _wait_for_unlink(name), (
            f"/dev/shm/{name} leaked after parent exited without close()"
        )

    def test_parent_killed_hard_leaves_no_orphan_segment(self, tmp_path):
        import signal
        import subprocess
        import sys

        script = tmp_path / "parent.py"
        script.write_text(_PARENT_SCRIPT)
        proc = subprocess.Popen(
            [sys.executable, str(script), "idle"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name, "child never reported its segment name"
            assert _segment_path(name).exists()
            # SIGKILL: no atexit, no __del__, no finally in the parent.
            # Workers see EOF on their pipes and exit; the multiprocessing
            # resource tracker then unlinks the orphaned segment.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            assert _wait_for_unlink(name), (
                f"/dev/shm/{name} orphaned after SIGKILL of the parent"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()

    def test_workers_exit_cleanly_on_sigterm(self):
        import os
        import signal

        venv = _make_env("shard", num_nodes=2, workers=2)
        try:
            # A command round-trip guarantees every worker reached its
            # serve loop (and installed its SIGTERM handler) before we
            # signal it.
            assert len(venv.migration_counts()) == 2
            procs = list(venv._procs)
            assert procs
            for proc in procs:
                os.kill(proc.pid, signal.SIGTERM)
            for proc in procs:
                proc.join(timeout=10.0)
                # The worker's SIGTERM handler raises SystemExit(0) so its
                # finally-block shm cleanup runs; the default disposition
                # would report -SIGTERM here.
                assert proc.exitcode == 0
        finally:
            venv.close()
