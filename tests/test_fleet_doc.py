"""docs/fleet.md must document exactly the fleet layer the code ships.

Same contract as ``tests/test_obs_schema_doc.py`` for the observability
doc: parse the machine-readable tables out of ``docs/fleet.md`` and diff
them against the code — balancer policy names against
``BALANCER_POLICIES``, traffic preset names against ``TRAFFIC_PRESETS``,
and the four traffic-spec dataclasses' field tables against their actual
``dataclasses.fields``.
"""

import dataclasses
import re
from pathlib import Path

from repro.cluster.balancer import BALANCER_POLICIES
from repro.cluster.traffic import (
    TRAFFIC_PRESETS,
    FlashCrowd,
    RegionalShift,
    ServiceTraffic,
    TrafficSpec,
)
from repro.hier.allocator import BudgetConfig

DOC = Path(__file__).resolve().parent.parent / "docs" / "fleet.md"

SPEC_CLASSES = {
    "ServiceTraffic": ServiceTraffic,
    "FlashCrowd": FlashCrowd,
    "RegionalShift": RegionalShift,
    "TrafficSpec": TrafficSpec,
    "BudgetConfig": BudgetConfig,
}

_SECTION = re.compile(r"^## (.+?)\s*$")
_CLASS_HEADING = re.compile(r"^### `([A-Za-z]+)`\s*$")
_NAME_ROW = re.compile(r"^\| `([a-z_]+)` \|")
_FIELD_ROW = re.compile(r"^\| `([a-z_]+)` \| ([a-z]+\??) \|")


def _normalize_annotation(annotation):
    """Map a dataclass field annotation to the doc's type vocabulary."""
    if annotation in ("str", "int", "float"):
        return annotation
    if annotation == "Optional[str]":
        return "str?"
    if annotation.startswith("Tuple["):
        return "tuple"
    raise AssertionError(f"no doc type mapping for annotation {annotation!r}")


def parse_doc(text):
    """Split the doc into sections and extract the backticked tables.

    Returns ``(section_names, {section: [row names]}, {class: {field: type}})``.
    ``### `Class` `` headings scope field tables to their dataclass.
    """
    sections = []
    rows = {}
    class_fields = {}
    section = None
    current_class = None
    for line in text.splitlines():
        heading = _SECTION.match(line)
        if heading:
            section = heading.group(1)
            sections.append(section)
            current_class = None
            rows.setdefault(section, [])
            continue
        class_heading = _CLASS_HEADING.match(line)
        if class_heading:
            current_class = class_heading.group(1)
            class_fields[current_class] = {}
            continue
        if current_class is not None:
            field = _FIELD_ROW.match(line)
            if field:
                class_fields[current_class][field.group(1)] = field.group(2)
                continue
        if section is not None:
            name = _NAME_ROW.match(line)
            if name:
                rows[section].append(name.group(1))
    return sections, rows, class_fields


def test_doc_exists():
    assert DOC.exists(), "docs/fleet.md is missing"


def test_doc_documents_every_balancer_policy():
    _, rows, _ = parse_doc(DOC.read_text())
    documented = sorted(rows.get("Balancer policies", []))
    assert documented == sorted(BALANCER_POLICIES), (
        "balancer policies in docs/fleet.md do not match BALANCER_POLICIES: "
        f"doc-only={sorted(set(documented) - set(BALANCER_POLICIES))}, "
        f"code-only={sorted(set(BALANCER_POLICIES) - set(documented))}"
    )


def test_doc_documents_every_traffic_preset():
    _, rows, _ = parse_doc(DOC.read_text())
    documented = sorted(rows.get("Traffic presets", []))
    assert documented == sorted(TRAFFIC_PRESETS), (
        "traffic presets in docs/fleet.md do not match TRAFFIC_PRESETS: "
        f"doc-only={sorted(set(documented) - set(TRAFFIC_PRESETS))}, "
        f"code-only={sorted(set(TRAFFIC_PRESETS) - set(documented))}"
    )


def test_doc_spec_tables_match_dataclasses():
    _, _, class_fields = parse_doc(DOC.read_text())
    assert sorted(class_fields) == sorted(SPEC_CLASSES), (
        "spec dataclasses documented in docs/fleet.md do not match the code: "
        f"doc-only={sorted(set(class_fields) - set(SPEC_CLASSES))}, "
        f"code-only={sorted(set(SPEC_CLASSES) - set(class_fields))}"
    )
    for name, cls in SPEC_CLASSES.items():
        code_fields = {
            f.name: _normalize_annotation(f.type) for f in dataclasses.fields(cls)
        }
        assert class_fields[name] == code_fields, (
            f"field table for `{name}` in docs/fleet.md disagrees with the "
            f"dataclass: doc={class_fields[name]}, code={code_fields}"
        )


def test_doc_has_scaling_guidance():
    sections, _, _ = parse_doc(DOC.read_text())
    assert any(s.startswith("Scaling guidance") for s in sections), (
        "docs/fleet.md is missing the scaling-guidance section"
    )


def test_doc_has_hierarchical_control_section():
    sections, _, _ = parse_doc(DOC.read_text())
    assert "Hierarchical control" in sections, (
        "docs/fleet.md is missing the hierarchical-control section"
    )
    text = DOC.read_text()
    # The section must cover the three things PR-8 promised to document.
    for needle in ("budget_assign", "node_provisioned", "vector engine"):
        assert needle in text, f"docs/fleet.md hier section never mentions {needle!r}"


def test_parser_actually_found_tables():
    # Guard against the parser silently matching nothing (which would make
    # the diff tests vacuous if the doc layout changed).
    _, rows, class_fields = parse_doc(DOC.read_text())
    assert len(rows.get("Balancer policies", [])) >= 4
    assert len(rows.get("Traffic presets", [])) >= 4
    assert len(class_fields) == 5
    assert all(fields for fields in class_fields.values())
