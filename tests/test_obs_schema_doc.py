"""docs/observability.md must document exactly the events the code emits.

Parses the "Event schema reference" section of the doc (``### `event` ``
headings followed by a ``| `field` | type | description |`` table) and
diffs event names, emitters, field names, and field types against
``repro.obs.events.EVENT_REGISTRY``. Run via ``make docs-check`` (also
part of the tier-1 suite).
"""

import re
from pathlib import Path

from repro.obs.events import EVENT_REGISTRY, OPTIONAL_ENVELOPE_FIELDS

DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"

_HEADING = re.compile(r"^### `([a-z_]+)`\s*$")
_EMITTER = re.compile(r"^Emitted by `([a-z_.]+)`\.")
_ROW = re.compile(r"^\| `([a-z0-9_]+)` \| ([a-z]+) \|")


def parse_doc_schema(text):
    """Return {event: {"emitter": str|None, "fields": {name: type}}}."""
    events = {}
    current = None
    in_reference = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_reference = line.strip() == "## Event schema reference"
            current = None
            continue
        if not in_reference:
            continue
        heading = _HEADING.match(line)
        if heading:
            current = {"emitter": None, "fields": {}}
            events[heading.group(1)] = current
            continue
        if current is None:
            continue
        emitter = _EMITTER.match(line)
        if emitter:
            current["emitter"] = emitter.group(1)
            continue
        row = _ROW.match(line)
        if row:
            current["fields"][row.group(1)] = row.group(2)
    return events


def test_doc_exists():
    assert DOC.exists(), "docs/observability.md is missing"


def test_doc_documents_every_registered_event():
    documented = parse_doc_schema(DOC.read_text())
    assert sorted(documented) == sorted(EVENT_REGISTRY), (
        "event types in docs/observability.md do not match EVENT_REGISTRY: "
        f"doc-only={sorted(set(documented) - set(EVENT_REGISTRY))}, "
        f"code-only={sorted(set(EVENT_REGISTRY) - set(documented))}"
    )


def test_doc_fields_match_registry():
    documented = parse_doc_schema(DOC.read_text())
    for name, spec in EVENT_REGISTRY.items():
        doc = documented[name]
        code_fields = {f.name: f.type for f in spec.fields}
        assert doc["fields"] == code_fields, (
            f"field table for `{name}` in docs/observability.md disagrees "
            f"with EVENT_REGISTRY: doc={doc['fields']}, code={code_fields}"
        )


def test_doc_emitters_match_registry():
    documented = parse_doc_schema(DOC.read_text())
    for name, spec in EVENT_REGISTRY.items():
        assert documented[name]["emitter"] == spec.emitter, (
            f"`{name}` emitter in doc is {documented[name]['emitter']!r}, "
            f"code says {spec.emitter!r}"
        )


def test_doc_documents_optional_envelope_fields():
    # Optional envelope fields (e.g. the vector engine's per-environment
    # `env` tag) live in the "Trace format" envelope tables, outside the
    # schema-reference section the parser reads — check them directly.
    text = DOC.read_text()
    for name, type_name in OPTIONAL_ENVELOPE_FIELDS.items():
        assert re.search(rf"^\| `{name}` \| {type_name} \|", text, re.M), (
            f"optional envelope field `{name}` ({type_name}) is not documented "
            "in docs/observability.md"
        )


def test_parser_actually_found_tables():
    # Guard against the parser silently matching nothing (which would make
    # the diff tests vacuous if the doc layout changed).
    documented = parse_doc_schema(DOC.read_text())
    assert len(documented) >= 5
    assert all(ev["fields"] for ev in documented.values())
