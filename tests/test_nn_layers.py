"""Unit tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Dense, Dropout, ReLU, Sequential
from repro.nn.network import numerical_gradient


def test_dense_forward_shape(rng):
    layer = Dense(4, 3, rng)
    out = layer.forward(np.ones((5, 4)))
    assert out.shape == (5, 3)


def test_dense_rejects_wrong_input_dim(rng):
    layer = Dense(4, 3, rng)
    with pytest.raises(ShapeError):
        layer.forward(np.ones((5, 7)))


def test_dense_rejects_nonpositive_sizes(rng):
    with pytest.raises(ConfigurationError):
        Dense(0, 3, rng)


def test_dense_backward_before_forward_raises(rng):
    layer = Dense(2, 2, rng)
    with pytest.raises(ShapeError):
        layer.backward(np.ones((1, 2)))


def test_dense_gradient_matches_numerical(rng):
    layer = Dense(3, 2, rng)
    x = rng.normal(size=(4, 3))
    target = rng.normal(size=(4, 2))

    def loss():
        out = layer.forward(x)
        return float(np.sum((out - target) ** 2))

    layer.forward(x)
    grad_out = 2.0 * (layer.forward(x) - target)
    layer.weight.zero_grad()
    layer.bias.zero_grad()
    layer.backward(grad_out)
    numeric = numerical_gradient(loss, layer.weight)
    assert np.allclose(layer.weight.grad, numeric, atol=1e-5)
    numeric_b = numerical_gradient(loss, layer.bias)
    assert np.allclose(layer.bias.grad, numeric_b, atol=1e-5)


def test_dense_input_gradient(rng):
    layer = Dense(3, 2, rng)
    x = rng.normal(size=(4, 3))
    layer.forward(x)
    grad_in = layer.backward(np.ones((4, 2)))
    assert grad_in.shape == x.shape
    expected = np.ones((4, 2)) @ layer.weight.value.T
    assert np.allclose(grad_in, expected)


def test_relu_masks_negatives():
    relu = ReLU()
    x = np.array([[-1.0, 0.0, 2.0]])
    out = relu.forward(x)
    assert np.allclose(out, [[0.0, 0.0, 2.0]])
    grad = relu.backward(np.ones_like(x))
    assert np.allclose(grad, [[0.0, 0.0, 1.0]])


def test_dropout_identity_when_not_training(rng):
    drop = Dropout(0.5, rng)
    x = rng.normal(size=(10, 10))
    assert np.array_equal(drop.forward(x, training=False), x)


def test_dropout_preserves_expectation(rng):
    drop = Dropout(0.5, rng)
    x = np.ones((2000, 50))
    out = drop.forward(x, training=True)
    assert abs(out.mean() - 1.0) < 0.05
    # dropped entries are exactly zero, kept entries are scaled by 1/keep
    assert set(np.unique(out.round(6))) <= {0.0, 2.0}


def test_dropout_rate_validation(rng):
    with pytest.raises(ConfigurationError):
        Dropout(1.0, rng)
    with pytest.raises(ConfigurationError):
        Dropout(-0.1, rng)


def test_dropout_backward_uses_same_mask(rng):
    drop = Dropout(0.5, rng)
    x = np.ones((100, 10))
    out = drop.forward(x, training=True)
    grad = drop.backward(np.ones_like(x))
    # gradient flows only where the forward pass kept units
    assert np.array_equal(grad != 0, out != 0)


def test_sequential_composes(rng):
    net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
    out = net.forward(np.ones((2, 3)))
    assert out.shape == (2, 2)
    grad = net.backward(np.ones((2, 2)))
    assert grad.shape == (2, 3)
    assert len(net.parameters()) == 4


def test_parameter_zero_grad(rng):
    layer = Dense(2, 2, rng)
    layer.forward(np.ones((1, 2)))
    layer.backward(np.ones((1, 2)))
    assert np.any(layer.weight.grad != 0)
    layer.weight.zero_grad()
    assert np.all(layer.weight.grad == 0)
