"""Unit and behavioural tests for the Twig task manager."""

import numpy as np
import pytest

from repro.core import Twig, TwigConfig
from repro.core.config import TwigConfig as Config
from repro.errors import ConfigurationError
from repro.experiments.runner import run_manager
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _make(names=("masstree",), config=None, seed=5):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    config = config or TwigConfig.fast()
    twig = Twig(profiles, config, np.random.default_rng(seed), spec=spec)
    gens = {
        n: ConstantLoad(get_profile(n).max_load_rps, 0.4, rng=np.random.default_rng(i))
        for i, n in enumerate(names)
    }
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec), profiles, gens, np.random.default_rng(seed + 1)
    )
    return twig, env


def test_names_reflect_variant():
    twig_s, _ = _make(("masstree",))
    twig_c, _ = _make(("masstree", "moses"))
    assert twig_s.name == "twig-s"
    assert twig_c.name == "twig-c"


def test_initial_assignment_is_full_socket_max_dvfs(spec):
    twig, env = _make()
    assignments = twig.initial_assignments()
    assert set(assignments["masstree"].cores) == set(env.socket_core_ids)
    assert assignments["masstree"].freq_index == len(spec.dvfs) - 1


def test_update_returns_valid_assignments():
    twig, env = _make()
    assignments = twig.initial_assignments()
    for _ in range(5):
        result = env.step(assignments)
        assignments = twig.update(result)
        assert set(assignments) == {"masstree"}
        assert all(c in env.socket_core_ids for c in assignments["masstree"].cores)


def test_transitions_are_fed_to_agent():
    twig, env = _make()
    assignments = twig.initial_assignments()
    result = env.step(assignments)
    twig.update(result)
    assert len(twig.agent.buffer) == 0  # first update has no previous state
    result = env.step(twig.mapper.map(twig._last_allocations))
    twig.update(result)
    assert len(twig.agent.buffer) == 1


def test_state_dim_scales_with_services():
    twig_s, _ = _make(("masstree",))
    twig_c, _ = _make(("masstree", "moses"))
    assert twig_s.agent.config.state_dim == 11
    assert twig_c.agent.config.state_dim == 22


def test_rewards_computed_per_service():
    twig, env = _make(("masstree", "moses"))
    assignments = twig.initial_assignments()
    result = env.step(assignments)
    twig.update(result)
    assert set(twig.last_rewards) == {"masstree", "moses"}


def test_exploit_freezes_exploration():
    twig, _ = _make()
    twig.exploit()
    assert twig.agent.epsilon() == 0.0


def test_transfer_to_swaps_service_and_resets_heads():
    twig, _ = _make(("masstree", "moses"))
    out_before = twig.agent.online.adv_heads[0][0].layers[-1].weight.value.copy()
    twig.transfer_to("moses", get_profile("xapian"))
    assert twig.service_order == ["masstree", "xapian"]
    assert "xapian" in twig.profiles
    assert "moses" not in twig.profiles
    assert not np.array_equal(
        twig.agent.online.adv_heads[0][0].layers[-1].weight.value, out_before
    )


def test_transfer_unknown_service_raises():
    twig, _ = _make()
    with pytest.raises(ConfigurationError):
        twig.transfer_to("ghost", get_profile("xapian"))


def test_needs_at_least_one_profile():
    with pytest.raises(ConfigurationError):
        Twig([], TwigConfig.fast(), np.random.default_rng(0))


def test_paper_config_defaults():
    config = Config.paper()
    assert config.learning_rate == pytest.approx(0.0025)
    assert config.batch_size == 64
    assert config.discount == pytest.approx(0.99)
    assert config.target_update_every == 150
    assert config.epsilon_mid_steps == 10_000
    assert config.epsilon_final_steps == 25_000
    assert config.shared_hidden == (512, 256)
    assert config.branch_hidden == 128
    assert config.dropout == 0.5
    assert config.eta == 5
    assert config.reward.theta == 0.5


def test_twig_learns_to_shed_resources_at_low_load():
    """Behavioural: at 20% load Twig ends well below the full allocation."""
    spec = ServerSpec()
    profile = get_profile("masstree")
    config = TwigConfig.fast(epsilon_mid_steps=1200, epsilon_final_steps=2000)
    twig = Twig([profile], config, np.random.default_rng(42), spec=spec)
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [profile],
        {"masstree": ConstantLoad(profile.max_load_rps, 0.2, rng=np.random.default_rng(8))},
        np.random.default_rng(7),
    )
    trace = run_manager(twig, env, 3000)
    assert trace.qos_guarantee("masstree", 300) > 90.0
    assert trace.mean_cores("masstree", 300) < 14.0


def test_twig_save_load_roundtrip(tmp_path):
    twig_a, _ = _make(seed=5)
    twig_b, _ = _make(seed=99)
    path = tmp_path / "twig.npz"
    twig_a.save(path)
    twig_b.load(path)
    state = np.zeros(11)
    assert (
        twig_b.agent.online.greedy_actions(state)
        == twig_a.agent.online.greedy_actions(state)
    )
