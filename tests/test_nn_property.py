"""Property-based tests for the neural-network framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import MLP, mse_loss
from repro.nn.losses import huber_loss
from repro.nn.network import numerical_gradient


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=4),
    batch=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_mlp_gradient_always_matches_numerical(sizes, batch, seed):
    """For random architectures, inputs, and targets, analytic backprop
    matches central differences on sampled weight entries."""
    rng = np.random.default_rng(seed)
    net = MLP(sizes, rng)
    x = rng.normal(size=(batch, sizes[0]))
    target = rng.normal(size=(batch, sizes[-1]))

    def loss():
        return mse_loss(net.forward(x), target)[0]

    for p in net.parameters():
        p.zero_grad()
    _, grad = mse_loss(net.forward(x), target)
    net.backward(grad)
    param = net.parameters()[0]
    numeric = numerical_gradient(loss, param, sample=3, rng=rng)
    mask = ~np.isnan(numeric)
    assert np.allclose(param.grad[mask], numeric[mask], atol=1e-4)


@settings(max_examples=40)
@given(
    pred=st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=20),
    target=st.floats(min_value=-50, max_value=50),
)
def test_losses_nonnegative_and_zero_iff_equal(pred, target):
    p = np.array(pred).reshape(-1, 1)
    t = np.full_like(p, target)
    for fn in (mse_loss, huber_loss):
        loss, grad = fn(p, t)
        assert loss >= 0.0
        # Exact equality: allclose() admits tiny nonzero residuals (e.g.
        # pred 1e-8 vs target 0) whose gradients are legitimately nonzero.
        if np.array_equal(p, t):
            assert loss == pytest.approx(0.0)
            assert np.allclose(grad, 0.0)


@settings(max_examples=30)
@given(
    value=st.floats(min_value=-100, max_value=100),
    delta=st.floats(min_value=0.1, max_value=10.0),
)
def test_huber_gradient_bounded_by_delta(value, delta):
    pred = np.array([[value]])
    target = np.array([[0.0]])
    _, grad = huber_loss(pred, target, delta=delta)
    assert abs(grad[0, 0]) <= delta + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_mlp_deterministic_inference(seed):
    rng = np.random.default_rng(seed)
    net = MLP([3, 8, 2], rng, dropout=0.5)
    x = rng.normal(size=(4, 3))
    assert np.array_equal(net.forward(x, training=False), net.forward(x, training=False))
