"""Unit tests for the power-profiling pipeline (shared by Twig and Fig. 4)."""

import numpy as np
import pytest

from repro.core.power_model import ServicePowerModel
from repro.experiments.profiling import (
    collect_power_samples,
    default_power_models,
    fit_service_power_model,
)
from repro.server.spec import ServerSpec
from repro.services.profiles import get_profile


def test_collect_covers_grid(rng):
    spec = ServerSpec()
    samples = collect_power_samples(
        get_profile("masstree"), spec, rng,
        loads=(0.2, 0.5), core_counts=(6, 12, 18), dvfs_indices=(0, 8),
        seconds_per_point=2,
    )
    # overloaded grid points are skipped, so <= full grid
    assert 0 < len(samples) <= 2 * 3 * 2
    loads = {s.load_pct for s in samples}
    assert loads <= {20.0, 50.0}
    assert all(s.dynamic_power_w > 0 for s in samples)


def test_dynamic_power_grows_with_cores_and_dvfs(rng):
    spec = ServerSpec()
    samples = collect_power_samples(
        get_profile("moses"), spec, rng,
        loads=(0.5,), core_counts=(6, 18), dvfs_indices=(0, 8),
        seconds_per_point=3,
    )
    by_key = {(s.num_cores, s.dvfs_ghz): s.dynamic_power_w for s in samples}
    if (18, 2.0) in by_key and (6, 2.0) in by_key:
        assert by_key[(18, 2.0)] > by_key[(6, 2.0)]
    if (18, 2.0) in by_key and (18, 1.2) in by_key:
        assert by_key[(18, 2.0)] > by_key[(18, 1.2)]


def test_fit_service_power_model_returns_fitted(rng):
    model = fit_service_power_model(
        get_profile("masstree"), ServerSpec(), rng,
        loads=(0.2, 0.5), core_counts=(6, 12, 18), dvfs_indices=(0, 4, 8),
        seconds_per_point=2, n_candidates=500,
    )
    assert isinstance(model, ServicePowerModel)
    assert model.fitted
    assert model.predict(50.0, 9, 1.6) > 0


def test_default_power_models_keys(rng):
    profiles = [get_profile("masstree"), get_profile("xapian")]
    models = default_power_models(
        profiles, ServerSpec(), rng,
        loads=(0.3, 0.6), core_counts=(6, 12, 18), dvfs_indices=(0, 8),
        seconds_per_point=2, n_candidates=300,
    )
    assert set(models) == {"masstree", "xapian"}
    assert all(m.fitted for m in models.values())
