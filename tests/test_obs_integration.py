"""Integration tests: traced runs, manifests, strict failure handling."""

import numpy as np
import pytest

from repro.core import Twig, TwigConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments, run_manager
from repro.obs import (
    NULL_SINK,
    MemorySink,
    ObsContext,
    activate,
    current,
    read_trace,
    summarize_events,
    validate_event,
)
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _env(seed=3, fraction=0.4):
    spec = ServerSpec()
    profile = get_profile("masstree")
    return ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [profile],
        {"masstree": ConstantLoad(profile.max_load_rps, fraction, rng=np.random.default_rng(seed))},
        np.random.default_rng(seed),
    )


def _twig(seed=1):
    return Twig(
        [get_profile("masstree")],
        TwigConfig.fast(),
        np.random.default_rng(seed),
        spec=ServerSpec(),
    )


def test_default_run_is_untraced():
    env = _env()
    assert env.trace is NULL_SINK
    run_manager(_twig(), env, 5)
    assert env.trace is NULL_SINK


def test_traced_run_emits_valid_schema_events():
    sink = MemorySink()
    obs = ObsContext(sink=sink)
    run_manager(_twig(), _env(), 30, obs=obs)
    assert sink.events, "traced run emitted nothing"
    for event in sink.events:
        validate_event(event)
    counts = {}
    for event in sink.events:
        counts[event["ev"]] = counts.get(event["ev"], 0) + 1
    assert counts["run_start"] == 1
    assert counts["run_end"] == 1
    assert counts["interval"] == 30
    assert counts["action"] == 30
    assert counts["reward"] == 30


def test_traced_run_records_timings():
    obs = ObsContext(sink=MemorySink())
    run_manager(_twig(), _env(), 10, obs=obs)
    summary = obs.timings.summary()
    assert summary["env.step"]["count"] == 10
    assert summary["manager.update"]["count"] == 10
    assert summary["agent.act"]["count"] == 10


def test_trace_aggregates_match_run_trace():
    sink = MemorySink()
    env = _env()
    trace = run_manager(_twig(), env, 40, obs=ObsContext(sink=sink))
    summary = summarize_events(sink.events)
    assert summary.steps == trace.steps()
    assert summary.services["masstree"].qos_guarantee_pct == pytest.approx(
        trace.qos_guarantee("masstree")
    )
    assert summary.mean_power_w == pytest.approx(trace.mean_power_w())
    # energy_j in the trace is the cumulative (noisy) RAPL reading.
    assert summary.final_energy_j == pytest.approx(env.energy_j)


def test_ambient_context_is_picked_up():
    sink = MemorySink()
    with activate(ObsContext(sink=sink)):
        assert current() is not None
        run_manager(_twig(), _env(), 5)
    assert current() is None
    assert any(e["ev"] == "interval" for e in sink.events)


def test_explicit_obs_wins_over_ambient():
    ambient = MemorySink()
    explicit = MemorySink()
    with activate(ObsContext(sink=ambient)):
        run_manager(_twig(), _env(), 5, obs=ObsContext(sink=explicit))
    assert not ambient.events
    assert explicit.events


def test_qos_violation_streaks_are_consecutive():
    sink = MemorySink()
    run_manager(_twig(), _env(fraction=0.9), 40, obs=ObsContext(sink=sink))
    violations = {
        (e["t"], e["service"]): e["consecutive"] for e in sink.of_type("qos_violation")
    }
    assert violations, "overloaded run produced no violations"
    for (t, name), streak in violations.items():
        previous = violations.get((t - 1, name), 0)
        assert streak == previous + 1


# ---------------------------------------------------------------------- #
# experiment batches
# ---------------------------------------------------------------------- #
def test_run_experiments_writes_manifest_and_trace(tmp_path):
    from repro.experiments.fig07_learning_curve import Fig07Config

    config = Fig07Config(
        total_steps=60, bucket=30, twig_epsilon_mid=20, hipster_learning_phase=20
    )
    runs = run_experiments(
        ["fig07"], configs={"fig07": config}, out_dir=tmp_path, trace=True
    )
    assert len(runs) == 1 and runs[0].ok
    manifest = runs[0].manifest
    assert manifest.seed == config.seed
    assert manifest.git_sha is not None
    assert manifest.wall_time_s > 0
    assert (tmp_path / "fig07" / "manifest.json").exists()
    events = read_trace(tmp_path / "fig07" / "trace.jsonl")
    assert len(events) == manifest.trace_events
    for event in events:
        validate_event(event)
    # The manifest's summary block is exactly what summarize recomputes.
    assert manifest.summary["trace"] == summarize_events(events).to_dict()
    assert manifest.timings["env.step"]["count"] == 2 * config.total_steps


def test_manifest_deterministic_given_fixed_seed(tmp_path):
    from repro.experiments.fig07_learning_curve import Fig07Config

    config = Fig07Config(
        total_steps=40, bucket=20, twig_epsilon_mid=10, hipster_learning_phase=10
    )
    summaries = []
    for sub in ("a", "b"):
        runs = run_experiments(
            ["fig07"], configs={"fig07": config}, out_dir=tmp_path / sub, trace=True
        )
        manifest = runs[0].manifest
        summaries.append((manifest.config_hash, manifest.summary["trace"]))
    assert summaries[0] == summaries[1]


def test_failures_recorded_in_manifest_not_swallowed(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    def exploding(experiment_id, config=None):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    runs = run_experiments(["fig07", "mem"], out_dir=tmp_path)
    assert [r.ok for r in runs] == [False, False]
    for run in runs:
        assert run.manifest.status == "failed"
        assert "kaboom" in run.manifest.error
        assert (tmp_path / run.experiment_id / "manifest.json").exists()


def test_strict_reraises_first_failure(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    def exploding(experiment_id, config=None):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    with pytest.raises(RuntimeError, match="kaboom"):
        run_experiments(["fig07"], out_dir=tmp_path, strict=True)
    # The manifest is written before the re-raise.
    assert (tmp_path / "fig07" / "manifest.json").exists()


def test_trace_requires_out_dir():
    with pytest.raises(ConfigurationError, match="out_dir"):
        run_experiments(["mem"], trace=True)
