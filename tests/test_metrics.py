"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.energy import energy_summary, normalized_energy
from repro.metrics.qos import qos_guarantee_pct, tardiness, violation_intensity


def test_qos_guarantee_counts_met_samples():
    assert qos_guarantee_pct([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(50.0)
    assert qos_guarantee_pct([1.0], 2.0) == 100.0
    assert qos_guarantee_pct([3.0], 2.0) == 0.0


def test_qos_guarantee_boundary_counts_as_met():
    assert qos_guarantee_pct([2.0], 2.0) == 100.0


def test_qos_guarantee_validation():
    with pytest.raises(ConfigurationError):
        qos_guarantee_pct([1.0], 0.0)
    with pytest.raises(ConfigurationError):
        qos_guarantee_pct([], 1.0)


def test_tardiness_ratios():
    ratios = tardiness([1.0, 2.0, 4.0], 2.0)
    assert np.allclose(ratios, [0.5, 1.0, 2.0])


def test_violation_intensity_only_over_violations():
    assert violation_intensity([1.0, 3.0, 5.0], 2.0) == pytest.approx((1.5 + 2.5) / 2)
    assert violation_intensity([1.0, 2.0], 2.0) == 0.0


def test_energy_summary():
    summary = energy_summary([100.0, 50.0], interval_s=2.0)
    assert summary["energy_j"] == pytest.approx(300.0)
    assert summary["mean_power_w"] == pytest.approx(75.0)
    assert summary["peak_power_w"] == pytest.approx(100.0)


def test_energy_summary_validation():
    with pytest.raises(ConfigurationError):
        energy_summary([], 1.0)
    with pytest.raises(ConfigurationError):
        energy_summary([1.0], 0.0)


def test_normalized_energy():
    assert normalized_energy(50.0, 100.0) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        normalized_energy(50.0, 0.0)
    with pytest.raises(ConfigurationError):
        normalized_energy(-1.0, 10.0)
