"""Unit tests for the experiment runner and trace summaries."""

import numpy as np
import pytest

from repro.baselines import StaticManager
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments, run_manager
from repro.obs.manifest import RunManifest
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def _env(seed=3, fraction=0.4):
    spec = ServerSpec()
    profile = get_profile("masstree")
    return ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [profile],
        {"masstree": ConstantLoad(profile.max_load_rps, fraction, rng=np.random.default_rng(seed))},
        np.random.default_rng(seed),
    )


def test_trace_lengths_match_steps():
    trace = run_manager(StaticManager(["masstree"]), _env(), 25)
    assert trace.steps() == 25
    assert len(trace.services["masstree"].p99_ms) == 25
    assert len(trace.true_power_w) == 25


def test_window_summaries():
    trace = run_manager(StaticManager(["masstree"]), _env(), 50)
    full = trace.qos_guarantee("masstree")
    windowed = trace.qos_guarantee("masstree", 10)
    assert 0.0 <= windowed <= 100.0
    assert 0.0 <= full <= 100.0
    assert trace.energy_j(10) < trace.energy_j()
    assert trace.mean_power_w(10) > 0


def test_core_histogram_sums_to_one():
    trace = run_manager(StaticManager(["masstree"]), _env(), 20)
    hist = trace.core_histogram("masstree", 18)
    assert hist.sum() == pytest.approx(1.0)
    assert hist[18] == pytest.approx(1.0)  # static always uses all 18


def test_tardiness_shape():
    trace = run_manager(StaticManager(["masstree"]), _env(), 20)
    ratios = trace.tardiness("masstree", 10)
    assert ratios.shape == (10,)
    assert np.all(ratios > 0)


def test_on_step_callback_runs_and_can_replace_assignments():
    calls = []

    def on_step(t, result):
        calls.append(t)
        return None

    run_manager(StaticManager(["masstree"]), _env(), 5, on_step=on_step)
    assert calls == [0, 1, 2, 3, 4]


def test_steps_must_be_positive():
    with pytest.raises(ConfigurationError):
        run_manager(StaticManager(["masstree"]), _env(), 0)


def test_migrations_recorded():
    trace = run_manager(StaticManager(["masstree"]), _env(), 5)
    assert trace.migrations["masstree"] == 18


# ---------------------------------------------------------------------- #
# parallel experiment batches
# ---------------------------------------------------------------------- #
@pytest.fixture
def many_cpus(monkeypatch):
    """Pretend the box has cores to spare.

    ``run_experiments`` clamps its worker count to the CPUs the process
    may actually run on, so on a single-core CI box ``jobs=2`` would
    silently take the serial path and these tests would stop exercising
    the process pool.
    """
    monkeypatch.setattr("repro.experiments.runner._available_cpus", lambda: 8)


def test_parallel_batch_matches_serial(tmp_path, many_cpus):
    ids = ["mem", "tab02"]
    serial = run_experiments(ids, out_dir=tmp_path / "serial")
    parallel = run_experiments(ids, out_dir=tmp_path / "par", jobs=2)
    # Deterministic result ordering: input order, not completion order.
    assert [r.experiment_id for r in parallel] == ids
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert s.manifest.comparable_dict() == p.manifest.comparable_dict()
    # The on-disk manifests (written from the workers) agree too.
    for experiment_id in ids:
        a = RunManifest.read(tmp_path / "serial" / experiment_id / "manifest.json")
        b = RunManifest.read(tmp_path / "par" / experiment_id / "manifest.json")
        assert a.comparable_dict() == b.comparable_dict()


def test_parallel_failures_recorded_not_swallowed(tmp_path, monkeypatch, many_cpus):
    import repro.experiments.registry as registry

    def exploding(experiment_id, config=None):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    runs = run_experiments(["mem", "tab02"], out_dir=tmp_path, jobs=2)
    assert [r.ok for r in runs] == [False, False]
    for run in runs:
        assert "kaboom" in run.manifest.error
        assert (tmp_path / run.experiment_id / "manifest.json").exists()


def test_parallel_strict_reraises_and_writes_manifest(tmp_path, monkeypatch, many_cpus):
    import repro.experiments.registry as registry

    def exploding(experiment_id, config=None):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    with pytest.raises(RuntimeError, match="kaboom"):
        run_experiments(["mem", "tab02"], out_dir=tmp_path, strict=True, jobs=2)
    # The failing experiment's manifest lands before the re-raise.
    manifest = RunManifest.read(tmp_path / "mem" / "manifest.json")
    assert manifest.status == "failed"


def test_jobs_must_be_positive():
    with pytest.raises(ConfigurationError):
        run_experiments(["mem"], jobs=0)


def test_jobs_clamped_to_cpu_count(tmp_path, monkeypatch):
    """jobs > cpu_count degrades to the serial path, not an oversized pool."""
    monkeypatch.setattr("repro.experiments.runner.os.cpu_count", lambda: 1)

    def no_pool(*args, **kwargs):
        raise AssertionError("ProcessPoolExecutor used despite 1 cpu")

    monkeypatch.setattr("repro.experiments.runner.ProcessPoolExecutor", no_pool)
    runs = run_experiments(["mem", "tab02"], out_dir=tmp_path, jobs=4)
    assert [r.ok for r in runs] == [True, True]


def test_parallel_traces_are_per_worker_files(tmp_path, many_cpus):
    ids = ["mem", "tab02"]
    runs = run_experiments(ids, out_dir=tmp_path, trace=True, jobs=2)
    for run in runs:
        assert run.ok
        trace_path = tmp_path / run.experiment_id / "trace.jsonl"
        assert str(trace_path) == run.manifest.trace_path
        assert trace_path.exists()


# ---------------------------------------------------------------------- #
# crash safety: retries, resume salvage, worker-crash recovery
# ---------------------------------------------------------------------- #
def test_retries_recover_flaky_experiment(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    calls = []

    def flaky(experiment_id, config=None):
        calls.append(experiment_id)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return "fine"

    monkeypatch.setattr(registry, "run_experiment", flaky)
    runs = run_experiments(["mem"], out_dir=tmp_path, retries=2, retry_backoff_s=0.0)
    assert runs[0].ok
    assert runs[0].result == "fine"
    assert calls == ["mem", "mem"]  # failed once, retried once, stopped
    manifest = RunManifest.read(tmp_path / "mem" / "manifest.json")
    assert manifest.status == "ok"  # final attempt wins on disk


def test_retries_exhausted_records_last_failure(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    calls = []

    def exploding(experiment_id, config=None):
        calls.append(experiment_id)
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    runs = run_experiments(["mem"], out_dir=tmp_path, retries=2, retry_backoff_s=0.0)
    assert not runs[0].ok
    assert "kaboom" in runs[0].manifest.error
    assert calls == ["mem"] * 3  # initial attempt + 2 retries


def test_strict_and_retries_are_mutually_exclusive():
    with pytest.raises(ConfigurationError, match="pick one"):
        run_experiments(["mem"], strict=True, retries=1)


def test_retry_knobs_validated():
    with pytest.raises(ConfigurationError, match="retries"):
        run_experiments(["mem"], retries=-1)
    with pytest.raises(ConfigurationError, match="retry_backoff_s"):
        run_experiments(["mem"], retry_backoff_s=-0.5)


def test_resume_skips_only_ok_manifests(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    # First batch completes "mem" for real, then "crashes" before tab02.
    first = run_experiments(["mem"], out_dir=tmp_path)
    assert first[0].ok
    # A torn manifest (the crash interrupted the write) must be re-run.
    torn_dir = tmp_path / "tab02"
    torn_dir.mkdir()
    (torn_dir / "manifest.json").write_text('{"experiment_id": "tab')

    calls = []

    def counting(experiment_id, config=None):
        calls.append(experiment_id)
        return "fine"

    monkeypatch.setattr(registry, "run_experiment", counting)
    runs = run_experiments(["mem", "tab02"], out_dir=tmp_path, resume=tmp_path)
    assert [r.experiment_id for r in runs] == ["mem", "tab02"]
    assert [r.ok for r in runs] == [True, True]
    # "mem" was salvaged from its manifest, not re-run; its in-memory
    # Result object died with the original batch.
    assert calls == ["tab02"]
    assert runs[0].result is None
    assert runs[1].result == "fine"


def test_resume_reruns_failed_manifests(tmp_path, monkeypatch):
    import repro.experiments.registry as registry

    def exploding(experiment_id, config=None):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(registry, "run_experiment", exploding)
    first = run_experiments(["mem"], out_dir=tmp_path)
    assert not first[0].ok

    def fixed(experiment_id, config=None):
        return "fine"

    monkeypatch.setattr(registry, "run_experiment", fixed)
    runs = run_experiments(["mem"], out_dir=tmp_path, resume=tmp_path)
    assert runs[0].ok
    assert runs[0].result == "fine"


def test_worker_crash_recovers_with_retries(tmp_path, monkeypatch, many_cpus):
    """A worker dying hard (os._exit) breaks the pool; with retries the
    batch salvages finished work, rebuilds the pool, and completes."""
    import repro.experiments.registry as registry

    sentinel = tmp_path / "crashed-once"

    def crash_once(experiment_id, config=None):
        if experiment_id == "tab02" and not sentinel.exists():
            sentinel.touch()
            import os as _os

            _os._exit(13)  # no exception, no manifest: the process is gone
        return "fine"

    monkeypatch.setattr(registry, "run_experiment", crash_once)
    out = tmp_path / "runs"
    runs = run_experiments(
        ["mem", "tab02"], out_dir=out, jobs=2, retries=1, retry_backoff_s=0.0
    )
    assert [r.experiment_id for r in runs] == ["mem", "tab02"]
    assert [r.ok for r in runs] == [True, True]
    assert sentinel.exists()
    for run in runs:
        manifest = RunManifest.read(out / run.experiment_id / "manifest.json")
        assert manifest.status == "ok"


def test_worker_crash_without_retries_synthesizes_manifests(
    tmp_path, monkeypatch, many_cpus
):
    import repro.experiments.registry as registry

    def always_crash(experiment_id, config=None):
        import os as _os

        _os._exit(13)

    monkeypatch.setattr(registry, "run_experiment", always_crash)
    runs = run_experiments(
        ["mem", "tab02"], out_dir=tmp_path, jobs=2, retries=0, retry_backoff_s=0.0
    )
    assert [r.ok for r in runs] == [False, False]
    for run in runs:
        assert "worker process crashed" in run.manifest.error
        manifest = RunManifest.read(tmp_path / run.experiment_id / "manifest.json")
        assert manifest.status == "failed"
        assert "BrokenProcessPool" in manifest.error


def test_strict_failure_not_masked_by_pool_crash(tmp_path, monkeypatch, many_cpus):
    """A strict-mode failure that finished before a worker crash broke the
    pool must re-raise promptly — not be masked as a crashed manifest or
    delayed by the pool-rebuild backoff."""
    import time as _time

    import repro.experiments.registry as registry

    def crash_or_fail(experiment_id, config=None):
        if experiment_id == "mem":
            import os as _os
            import time as _wtime

            # Busy-wait so the other worker's ValueError lands first,
            # then die hard to break the pool.
            deadline = _wtime.monotonic() + 1.0
            while _wtime.monotonic() < deadline:
                pass
            _os._exit(13)
        raise ValueError("strict failure in done future")

    monkeypatch.setattr(registry, "run_experiment", crash_or_fail)
    start = _time.monotonic()
    with pytest.raises(ValueError, match="strict failure"):
        run_experiments(
            ["mem", "tab02"], out_dir=tmp_path, jobs=2, strict=True,
            retry_backoff_s=60.0,
        )
    # Prompt abort: nowhere near the 60s backoff.
    assert _time.monotonic() - start < 30.0
    manifest = RunManifest.read(tmp_path / "tab02" / "manifest.json")
    assert manifest.status == "failed"


def test_checkpoint_every_requires_out_dir():
    with pytest.raises(ConfigurationError, match="checkpoint_every"):
        run_experiments(["mem"], checkpoint_every=10)


def test_run_manager_uses_ambient_checkpoint_context(tmp_path):
    from repro.experiments.runner import RUN_CKPT_NAME
    from repro.obs.context import ObsContext, activate

    from repro.core.twig import Twig, TwigConfig

    env = _env()
    twig = Twig(
        [get_profile("masstree")], TwigConfig.fast(), np.random.default_rng(7),
        spec=ServerSpec(),
    )
    obs = ObsContext(checkpoint_every=5, checkpoint_dir=tmp_path)
    with activate(obs):
        run_manager(twig, env, 12)
    assert (tmp_path / RUN_CKPT_NAME).exists()


def test_ambient_checkpointing_skips_incapable_managers(tmp_path):
    """`repro run --checkpoint-every` reaches every run inside an
    experiment, including baseline comparison runs; a manager without
    state_dict must run uncheckpointed, not fail the experiment."""
    from repro.experiments.runner import RUN_CKPT_NAME
    from repro.obs.context import ObsContext, activate

    obs = ObsContext(checkpoint_every=5, checkpoint_dir=tmp_path)
    with activate(obs):
        trace = run_manager(StaticManager(["masstree"]), _env(), 12)
    assert trace.steps() == 12
    assert not (tmp_path / RUN_CKPT_NAME).exists()


def test_to_csv_roundtrip(tmp_path):
    import csv

    trace = run_manager(StaticManager(["masstree"]), _env(), 10)
    path = tmp_path / "trace.csv"
    trace.to_csv(path)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0][0] == "step"
    assert "masstree.p99_ms" in rows[0]
    assert len(rows) == 11  # header + 10 steps
    assert float(rows[1][1]) > 0  # p99 positive
