"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server.spec import DvfsLadder, ServerSpec, SocketSpec
from repro.services.profiles import get_profile


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def spec() -> ServerSpec:
    """The paper's platform: 2 sockets x 18 cores, 1.2-2.0 GHz."""
    return ServerSpec()


@pytest.fixture
def small_spec() -> ServerSpec:
    """A small machine for fast mapper/environment tests."""
    return ServerSpec(
        sockets=2,
        socket=SocketSpec(cores=8, llc_mb=20.0, membw_gbps=40.0),
        dvfs=DvfsLadder(frequencies_ghz=(1.2, 1.6, 2.0)),
    )


@pytest.fixture
def masstree():
    return get_profile("masstree")


@pytest.fixture
def moses():
    return get_profile("moses")


@pytest.fixture
def xapian():
    return get_profile("xapian")
