"""Fault injection and graceful degradation.

Covers the `repro.sim.faults` kinds, the SystemMonitor's rejection of
non-finite telemetry, Twig's hold-last-allocation degraded mode, and the
end-to-end property the ISSUE demands: a fault-injected run completes and
emits ``fault``/``degraded`` trace events instead of crashing.
"""

import math

import numpy as np
import pytest

from repro.core import Twig, TwigConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_manager
from repro.obs.sink import MemorySink
from repro.pmc.counters import CounterCatalogue
from repro.pmc.monitor import SystemMonitor
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig
from repro.sim.faults import FAULT_KINDS, Fault, FaultInjector


def _env(names=("masstree",), seed=3, faults=None, trace=None):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    generators = {
        n: ConstantLoad(get_profile(n).max_load_rps, 0.4, rng=np.random.default_rng(i))
        for i, n in enumerate(names)
    }
    return ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        profiles,
        generators,
        np.random.default_rng(seed),
        trace=trace,
        faults=faults,
    )


def _twig(names=("masstree",), seed=5, trace=None):
    spec = ServerSpec()
    profiles = [get_profile(n) for n in names]
    return Twig(
        profiles, TwigConfig.fast(), np.random.default_rng(seed), spec=spec, trace=trace
    )


# ---------------------------------------------------------------------- #
# Fault / FaultInjector units
# ---------------------------------------------------------------------- #
def test_fault_validation():
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        Fault("meteor_strike", "masstree", start=1)
    with pytest.raises(ConfigurationError, match="start"):
        Fault("pmc_dropout", "masstree", start=-1)
    with pytest.raises(ConfigurationError, match="duration"):
        Fault("pmc_dropout", "masstree", start=1, duration=0)
    with pytest.raises(ConfigurationError, match="magnitude"):
        Fault("latency_spike", "masstree", start=1, magnitude=0.0)
    with pytest.raises(ConfigurationError, match="magnitude"):
        Fault("latency_spike", "masstree", start=1, magnitude=math.nan)


def test_fault_active_window():
    fault = Fault("pmc_dropout", "masstree", start=3, duration=2)
    assert [t for t in range(8) if fault.active_at(t)] == [3, 4]
    injector = FaultInjector([fault])
    assert injector.active_at(3) == [fault]
    assert injector.active_at(5) == []


def test_injector_rejects_non_fault():
    with pytest.raises(ConfigurationError, match="expected a Fault"):
        FaultInjector(["pmc_dropout"])


def test_pmc_dropout_nans_all_counters_of_target_only():
    env = _env(
        ("masstree", "moses"),
        faults=FaultInjector([Fault("pmc_dropout", "masstree", start=1)]),
    )
    twig = _twig(("masstree", "moses"))
    result = env.step(twig.initial_assignments())
    assert all(math.isnan(v) for v in result.observations["masstree"].pmcs.values())
    assert all(math.isfinite(v) for v in result.observations["moses"].pmcs.values())
    # Latency observation itself is untouched by a PMC-only fault.
    assert math.isfinite(result.observations["masstree"].p99_ms)


def test_pmc_nan_hits_magnitude_counters():
    env = _env(
        faults=FaultInjector([Fault("pmc_nan", "masstree", start=1, magnitude=3)])
    )
    twig = _twig()
    result = env.step(twig.initial_assignments())
    pmcs = result.observations["masstree"].pmcs
    assert sum(1 for v in pmcs.values() if math.isnan(v)) == 3


def test_latency_spike_multiplies_measured_latency_exactly():
    # Paired runs with identical seeds: injection happens after all RNG
    # draws, so the faulted p99 is exactly magnitude x the clean one.
    clean_env, twig = _env(seed=11), _twig()
    assignments = twig.initial_assignments()
    clean = clean_env.step(assignments)

    spiked_env = _env(
        seed=11,
        faults=FaultInjector([Fault("latency_spike", "masstree", start=1, magnitude=4.0)]),
    )
    spiked = spiked_env.step(assignments)
    assert spiked.observations["masstree"].p99_ms == pytest.approx(
        4.0 * clean.observations["masstree"].p99_ms, rel=0, abs=0
    )
    # Power/energy are ground truth — sensor faults do not change them.
    assert spiked.true_power_w == clean.true_power_w


def test_service_crash_zeroes_service_and_drops_backlog():
    env = _env(
        faults=FaultInjector([Fault("service_crash", "masstree", start=2)])
    )
    twig = _twig()
    assignments = twig.initial_assignments()
    env.step(assignments)
    env.services["masstree"].backlog = 37.0  # pretend a queue built up
    result = env.step(assignments)
    observation = result.observations["masstree"]
    assert observation.interval.throughput_rps == 0.0
    assert math.isnan(observation.p99_ms)
    assert observation.interval.utilization == 0.0
    assert observation.interval.backlog == 0.0
    assert env.services["masstree"].backlog == 0.0  # restarted with empty queue
    assert not observation.qos_met  # NaN p99 counts as a violation, not a crash


def test_faults_do_not_perturb_rng_streams():
    """Intervals outside the fault window are bit-identical to a clean run."""
    clean_env = _env(seed=11)
    faulted_env = _env(
        seed=11,
        faults=FaultInjector([Fault("pmc_dropout", "masstree", start=2, duration=2)]),
    )
    twig = _twig()
    assignments = twig.initial_assignments()
    for t in range(1, 7):
        clean = clean_env.step(assignments)
        faulted = faulted_env.step(assignments)
        if not (2 <= t < 4):
            assert (
                faulted.observations["masstree"].p99_ms
                == clean.observations["masstree"].p99_ms
            )
            assert faulted.observations["masstree"].pmcs == clean.observations["masstree"].pmcs
        assert faulted.socket_power_w == clean.socket_power_w


def test_fault_events_emitted_when_tracing():
    sink = MemorySink()
    env = _env(
        faults=FaultInjector(
            [Fault("latency_spike", "masstree", start=2, duration=2, magnitude=3.0)]
        ),
        trace=sink,
    )
    twig = _twig()
    assignments = twig.initial_assignments()
    for _ in range(4):
        env.step(assignments)
    faults = [e for e in sink.events if e["ev"] == "fault"]
    assert [e["t"] for e in faults] == [2, 3]
    assert faults[0]["service"] == "masstree"
    assert faults[0]["kind"] == "latency_spike"
    assert faults[0]["magnitude"] == 3.0


# ---------------------------------------------------------------------- #
# SystemMonitor telemetry sanitization
# ---------------------------------------------------------------------- #
def _monitor():
    return SystemMonitor(CounterCatalogue(ServerSpec()).max_values(), eta=3)


def test_monitor_rejects_non_finite_and_recovers():
    monitor = _monitor()
    counters = sorted(monitor.max_values)
    good = {name: 100.0 for name in counters}
    state_good = monitor.observe("masstree", good)
    assert "masstree" not in monitor.degraded

    bad = dict(good)
    bad[counters[0]] = float("nan")
    state_bad = monitor.observe("masstree", bad)
    assert "masstree" in monitor.degraded
    assert np.array_equal(state_bad, state_good)  # last good state, no NaN
    assert np.all(np.isfinite(state_bad))

    state_recovered = monitor.observe("masstree", good)
    assert "masstree" not in monitor.degraded
    assert np.all(np.isfinite(state_recovered))


def test_monitor_degraded_state_before_any_good_sample():
    monitor = _monitor()
    bad = {name: float("inf") for name in monitor.max_values}
    state = monitor.observe("masstree", bad)
    assert "masstree" in monitor.degraded
    assert np.array_equal(state, np.zeros(monitor.state_dim))


# ---------------------------------------------------------------------- #
# Twig degraded mode
# ---------------------------------------------------------------------- #
#: Kinds that make telemetry unusable (latency_spike yields finite, merely
#: wrong readings — the manager still acts and learns from those).
DEGRADING_KINDS = ("pmc_dropout", "pmc_nan", "service_crash")


@pytest.mark.parametrize("kind", DEGRADING_KINDS)
def test_twig_holds_allocation_through_fault(kind):
    sink = MemorySink()
    env = _env(
        seed=11,
        faults=FaultInjector([Fault(kind, "masstree", start=4, duration=2)]),
        trace=sink,
    )
    twig = _twig(trace=sink)
    assignments = twig.initial_assignments()
    held = None
    for t in range(1, 9):
        result = env.step(assignments)
        before = dict(twig._last_allocations)
        assignments = twig.update(result)
        if 4 <= t < 6:
            # Degraded: allocation held, transition chain broken.
            assert twig._last_allocations == before
            assert twig._prev_state is None and twig._prev_actions is None
            if held is not None:
                assert assignments == held
            held = assignments
    degraded = [e for e in sink.events if e["ev"] == "degraded"]
    assert [e["t"] for e in degraded] == [4, 5]
    assert all(e["services"] == ["masstree"] for e in degraded)
    assert all(e["held_allocation"] for e in degraded)
    # Recovery: the agent acts again after the fault clears.
    assert twig._prev_state is not None


def test_latency_spike_does_not_degrade():
    """A spike is finite (just wrong): the manager keeps acting on it —
    that is the point of the kind (an antagonist burst, not broken
    sensors), and the QoS penalty is how the agent experiences it."""
    sink = MemorySink()
    env = _env(
        seed=11,
        faults=FaultInjector(
            [Fault("latency_spike", "masstree", start=3, magnitude=10.0)]
        ),
        trace=sink,
    )
    twig = _twig(trace=sink)
    assignments = twig.initial_assignments()
    for _ in range(4):
        result = env.step(assignments)
        assignments = twig.update(result)
    assert not any(e["ev"] == "degraded" for e in sink.events)
    assert twig._prev_state is not None  # chain unbroken


def test_twig_degraded_skips_learning():
    env = _env(
        seed=11, faults=FaultInjector([Fault("pmc_dropout", "masstree", start=3)])
    )
    twig = _twig()
    assignments = twig.initial_assignments()
    sizes = []
    for _ in range(1, 6):
        result = env.step(assignments)
        assignments = twig.update(result)
        sizes.append(len(twig.agent.buffer))
    # t=1 seeds no transition; t=2 adds one; t=3 (degraded) adds nothing and
    # resets the chain; t=4 re-seeds; t=5 adds the next one.
    assert sizes == [0, 1, 1, 1, 2]


def test_faulted_run_completes_end_to_end():
    """The acceptance scenario: a run with every fault kind injected
    completes all steps and records fault + degraded events."""
    sink = MemorySink()
    injector = FaultInjector(
        [
            Fault("pmc_dropout", "masstree", start=5, duration=2),
            Fault("pmc_nan", "masstree", start=10, magnitude=2),
            Fault("latency_spike", "masstree", start=15, duration=2, magnitude=5.0),
            Fault("service_crash", "masstree", start=20, duration=2),
        ]
    )
    env = _env(seed=11, faults=injector, trace=sink)
    twig = _twig(trace=sink)
    trace = run_manager(twig, env, 30)
    assert trace.steps() == 30
    kinds = {e["kind"] for e in sink.events if e["ev"] == "fault"}
    assert kinds == set(FAULT_KINDS)
    assert any(e["ev"] == "degraded" for e in sink.events)
    # Spiked/NaN latency lands in the recorded trace (NaN for the crash).
    p99 = trace.services["masstree"].p99_ms
    assert math.isnan(p99[19])  # step index 19 is interval t=20
    assert all(math.isfinite(v) for v in trace.power_w)


def test_injector_state_roundtrip():
    injector = FaultInjector(
        [Fault("pmc_nan", "masstree", start=1, duration=50, magnitude=2)],
        rng=np.random.default_rng(7),
    )
    injector._rng.random(13)
    state = injector.state_dict()
    other = FaultInjector(
        [Fault("pmc_nan", "masstree", start=1, duration=50, magnitude=2)],
        rng=np.random.default_rng(99),
    )
    other.load_state_dict(state)
    assert np.array_equal(injector._rng.random(8), other._rng.random(8))
