"""Schema tests for the trace event registry and validator."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    ENVELOPE_FIELDS,
    EVENT_REGISTRY,
    OPTIONAL_ENVELOPE_FIELDS,
    SCHEMA_VERSION,
    make_event,
    validate_event,
)

#: One schema-conformant payload per event type, used across the obs tests.
SAMPLE_PAYLOADS = {
    "run_start": dict(manager="twig-s", services=["masstree"], steps=10, interval_s=1.0),
    "interval": dict(
        services={
            "masstree": dict(
                p99_ms=0.5, qos_target_ms=1.0, qos_met=True,
                arrival_rps=100.0, cores=4.0, frequency_ghz=2.0,
            )
        },
        power_w=55.0, true_power_w=54.0, membw_utilization=0.3, energy_j=100.0,
    ),
    "qos_violation": dict(
        service="masstree", p99_ms=2.0, qos_target_ms=1.0, tardiness=2.0, consecutive=1
    ),
    "action": dict(
        service="masstree", cores=4, freq_index=2, frequency_ghz=1.6,
        llc_ways=0, epsilon=0.5,
    ),
    "reward": dict(
        service="masstree", reward=1.5, qos_rew=0.5, power_rew=2.0,
        violation=False, measured_qos_ms=0.5, estimated_power_w=10.0,
    ),
    "train_step": dict(
        step=100, train_count=50, loss=0.25, epsilon=0.5, beta=0.6,
        buffer_size=1000, mean_td_error=0.1,
    ),
    "fault": dict(
        service="masstree", kind="pmc_dropout", magnitude=1.0, start=5, duration=3
    ),
    "degraded": dict(services=["masstree"], held_allocation=True),
    "run_end": dict(steps=10, wall_time_s=1.25),
    "cluster_interval": dict(
        nodes=4,
        services={
            "masstree": dict(
                offered_rps=4000.0, served_rps=3900.0, qos_nodes=3,
                worst_p99_ms=2.5, mean_p99_ms=1.2,
            )
        },
        qos_guarantee=0.75, power_w=220.0, true_power_w=218.0, energy_j=5000.0,
    ),
    "budget_assign": dict(
        level=0.65, tilt=0.125, mean_budget_w=60.0, min_budget_w=45.0,
        max_budget_w=80.0, period=10, reward=0.4,
    ),
    "node_provisioned": dict(
        source="runs/fleet/run.ckpt.npz", services=["masstree"],
        restart_epsilon_at=0,
    ),
    "node_registered": dict(
        node_id="node-0", address="127.0.0.1:7001", services=["masstree"],
        epoch=2,
    ),
    "heartbeat_missed": dict(node_id="node-0", epoch=2, missed=1, state="degraded"),
    "node_state_change": dict(
        node_id="node-0", epoch=2, from_state="degraded", to_state="offline",
        version=7, reason="deadline",
    ),
    "policy_rollout": dict(
        version=3, source="runs/policy.npz", updated=7, failed=1,
        nodes=["node-0", "node-1"],
    ),
}


def test_sample_payloads_cover_whole_registry():
    assert set(SAMPLE_PAYLOADS) == set(EVENT_REGISTRY)


@pytest.mark.parametrize("ev", sorted(EVENT_REGISTRY))
def test_every_event_type_round_trips(ev):
    event = make_event(ev, 3, **SAMPLE_PAYLOADS[ev])
    assert event["ev"] == ev
    assert event["v"] == SCHEMA_VERSION
    assert event["t"] == 3
    validate_event(event)


def test_envelope_is_stable():
    assert ENVELOPE_FIELDS == {"ev": "str", "v": "int", "t": "int"}
    assert OPTIONAL_ENVELOPE_FIELDS == {"env": "int", "node": "int"}


@pytest.mark.parametrize("ev", sorted(EVENT_REGISTRY))
def test_env_tagged_events_validate(ev):
    # Vector-engine emissions carry the optional `env` envelope field on
    # every event type; it must validate and stay out of the payload.
    event = make_event(ev, 3, env=5, **SAMPLE_PAYLOADS[ev])
    assert event["env"] == 5
    validate_event(event)


def test_env_omitted_by_default():
    event = make_event("run_end", 1, steps=10, wall_time_s=1.0)
    assert "env" not in event


def test_non_int_env_rejected():
    event = make_event("run_end", 1, env=0, steps=10, wall_time_s=1.0)
    event["env"] = "zero"
    with pytest.raises(ConfigurationError, match="'env' is not int"):
        validate_event(event)


def test_unknown_event_type_rejected():
    with pytest.raises(ConfigurationError, match="unknown event type"):
        validate_event({"ev": "nope", "v": SCHEMA_VERSION, "t": 0})


def test_missing_field_rejected():
    event = make_event("run_end", 1, steps=10, wall_time_s=1.0)
    del event["steps"]
    with pytest.raises(ConfigurationError, match="missing fields"):
        validate_event(event)


def test_undeclared_field_rejected():
    event = make_event("run_end", 1, steps=10, wall_time_s=1.0, extra=1)
    with pytest.raises(ConfigurationError, match="undeclared fields"):
        validate_event(event)


def test_wrong_type_rejected():
    event = make_event("run_end", 1, steps="ten", wall_time_s=1.0)
    with pytest.raises(ConfigurationError, match="run_end.steps"):
        validate_event(event)


def test_bool_is_not_an_int():
    event = make_event("run_end", 1, steps=True, wall_time_s=1.0)
    with pytest.raises(ConfigurationError, match="run_end.steps"):
        validate_event(event)


def test_int_is_accepted_where_float_declared():
    validate_event(make_event("run_end", 1, steps=10, wall_time_s=1))


def test_wrong_schema_version_rejected():
    event = make_event("run_end", 1, steps=10, wall_time_s=1.0)
    event["v"] = SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError, match="schema version"):
        validate_event(event)


def test_missing_envelope_rejected():
    with pytest.raises(ConfigurationError, match="envelope"):
        validate_event({"ev": "run_end", "steps": 10, "wall_time_s": 1.0})


def test_registry_specs_have_documented_fields():
    for spec in EVENT_REGISTRY.values():
        assert spec.description
        assert spec.emitter.startswith("repro.")
        for field in spec.fields:
            assert field.description
