"""Property tests for the node lifecycle state machine.

The two properties ISSUE acceptance leans on: no transition path skips
``degraded`` on the way to ``offline``, and a re-register after
deregister always grants a fresh epoch.
"""

import itertools

import pytest

from repro.ctrl.lifecycle import (
    ACTIVE_STATES,
    DEGRADED,
    DEREGISTERED,
    HEALTHY,
    LIFECYCLE_EVENTS,
    NODE_STATES,
    OFFLINE,
    REGISTERED,
    SERVING_STATES,
    TRANSITIONS,
    next_state,
)
from repro.ctrl.registry import ManualClock, NodeRegistry
from repro.errors import ConfigurationError, ControlPlaneError


# --------------------------------------------------------------------- #
# static structure
# --------------------------------------------------------------------- #
def test_every_state_has_a_transition_row():
    assert set(TRANSITIONS) == set(NODE_STATES)


def test_deregistered_is_terminal():
    assert TRANSITIONS[DEREGISTERED] == {}
    for event in LIFECYCLE_EVENTS:
        assert next_state(DEREGISTERED, event) is None


def test_all_transition_targets_are_known_states():
    for state, events in TRANSITIONS.items():
        for event, target in events.items():
            assert event in LIFECYCLE_EVENTS, (state, event)
            assert target in NODE_STATES, (state, event, target)


def test_unknown_state_and_event_rejected():
    with pytest.raises(KeyError):
        next_state("zombie", "heartbeat")
    with pytest.raises(ValueError):
        next_state(HEALTHY, "reboot")


# --------------------------------------------------------------------- #
# property: offline is only reachable through degraded
# --------------------------------------------------------------------- #
def test_no_single_transition_skips_degraded():
    # The only edge into OFFLINE is DEGRADED --deadline--> OFFLINE.
    into_offline = [
        (state, event)
        for state, events in TRANSITIONS.items()
        for event, target in events.items()
        if target == OFFLINE
    ]
    assert into_offline == [(DEGRADED, "deadline")]


def test_every_event_path_to_offline_passes_through_degraded():
    # Brute-force every event sequence up to length 5 from every start
    # state: any walk that reaches OFFLINE must have visited DEGRADED.
    for start in NODE_STATES:
        for length in range(1, 6):
            for events in itertools.product(LIFECYCLE_EVENTS, repeat=length):
                state = start
                visited = [state]
                for event in events:
                    nxt = next_state(state, event)
                    if nxt is not None:
                        state = nxt
                    visited.append(state)
                if state == OFFLINE and start != OFFLINE:
                    assert DEGRADED in visited, (start, events, visited)


def test_deadline_moves_at_most_one_step_toward_offline():
    order = {REGISTERED: 0, HEALTHY: 0, DEGRADED: 1, OFFLINE: 2}
    for state in (REGISTERED, HEALTHY, DEGRADED):
        target = next_state(state, "deadline")
        assert order[target] == order[state] + 1, (state, target)


def test_heartbeat_always_recovers_to_healthy():
    for state in NODE_STATES:
        if state == DEREGISTERED:
            continue
        assert next_state(state, "heartbeat") == HEALTHY


def test_serving_and_active_states_exclude_offline_and_terminal():
    assert OFFLINE not in SERVING_STATES
    assert DEREGISTERED not in SERVING_STATES
    assert OFFLINE not in ACTIVE_STATES
    assert DEREGISTERED not in ACTIVE_STATES


# --------------------------------------------------------------------- #
# property: registry sweeps honour the no-skip invariant
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("degraded_after,offline_after", [(1, 2), (1, 3), (2, 5)])
def test_sweep_never_skips_degraded_even_after_a_long_stall(
    degraded_after, offline_after
):
    # A node that stalls for long enough to be offline must still pass
    # through degraded — visible in the state-change event stream.
    from repro.obs.sink import MemorySink

    clock = ManualClock()
    trace = MemorySink(validate=True)
    registry = NodeRegistry(
        heartbeat_interval_s=1.0,
        degraded_after=degraded_after,
        offline_after=offline_after,
        clock=clock,
        trace=trace,
    )
    record = registry.register("n0", "127.0.0.1:1", ["masstree"])
    registry.heartbeat("n0", record.epoch)
    clock.advance(1000.0)  # miles past every threshold
    registry.sweep()
    assert registry.get("n0").state == OFFLINE
    changes = [
        (e["from_state"], e["to_state"])
        for e in trace.events
        if e["ev"] == "node_state_change"
    ]
    assert (HEALTHY, DEGRADED) in changes
    assert (DEGRADED, OFFLINE) in changes
    assert changes.index((HEALTHY, DEGRADED)) < changes.index((DEGRADED, OFFLINE))


def test_registry_rejects_threshold_inversion():
    for degraded_after, offline_after in [(0, 3), (3, 3), (4, 2)]:
        with pytest.raises(ConfigurationError):
            NodeRegistry(
                degraded_after=degraded_after, offline_after=offline_after
            )


# --------------------------------------------------------------------- #
# property: re-registration grants a fresh epoch
# --------------------------------------------------------------------- #
def test_reregister_after_deregister_gets_fresh_epoch():
    clock = ManualClock()
    registry = NodeRegistry(clock=clock)
    first = registry.register("n0", "127.0.0.1:1", ["masstree"])
    registry.deregister("n0", epoch=first.epoch)
    with pytest.raises(ControlPlaneError):
        registry.heartbeat("n0", first.epoch)  # terminal until re-register
    second = registry.register("n0", "127.0.0.1:2", ["masstree"])
    assert second.epoch > first.epoch
    assert second.state == REGISTERED
    # The old incarnation's epoch stays dead.
    with pytest.raises(ControlPlaneError):
        registry.heartbeat("n0", first.epoch)
    assert registry.heartbeat("n0", second.epoch) == HEALTHY


def test_epochs_are_unique_across_nodes_and_reregisters():
    registry = NodeRegistry(clock=ManualClock())
    epochs = []
    for i in range(3):
        for node in ("a", "b"):
            epochs.append(registry.register(node, f"addr:{i}", ["x"]).epoch)
    assert len(set(epochs)) == len(epochs)
    assert epochs == sorted(epochs)
