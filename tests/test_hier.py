"""Hierarchical fleet control: allocator, budgets, transfer, resume."""

import numpy as np
import pytest

from repro.cluster.environment import ClusterEnvironment
from repro.core.config import TwigConfig
from repro.engine.fleet import FleetTwig
from repro.engine.rollout import run_fleet
from repro.errors import CheckpointError, ConfigurationError, ShapeError
from repro.hier import (
    RULE_BASELINES,
    BudgetAllocator,
    BudgetConfig,
    HierFleetTwig,
    make_rule_fleet,
    provision_fleet,
)
from repro.obs.context import ObsContext
from repro.obs.sink import MemorySink
from repro.services.profiles import get_profile
from repro.sim.faults import Fault, FaultInjector

SERVICES = ["masstree", "xapian"]


def _twig_config():
    return TwigConfig.fast(epsilon_mid_steps=10, epsilon_final_steps=20)


def _build_hier(num_nodes, seed=7, period=4, **kwargs):
    venv = ClusterEnvironment.from_services(
        SERVICES, num_nodes=num_nodes, seed=seed, balancer="least_loaded"
    )
    manager = HierFleetTwig(
        [get_profile(s) for s in SERVICES],
        _twig_config(),
        np.random.default_rng(seed + 1),
        num_envs=num_nodes,
        budget=BudgetConfig(period=period, **kwargs),
        allocator_rng=np.random.default_rng(seed + 2),
    )
    manager.index_tag = "node"
    return manager, venv


class TestBudgetConfig:
    def test_defaults_valid(self):
        config = BudgetConfig()
        assert config.period == 10 and config.levels == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0},
            {"levels": 1},
            {"tilts": 0},
            {"floor_fraction": 0.0},
            {"floor_fraction": 1.0},
            {"tilt_strength": -0.1},
            {"energy_weight": -1.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BudgetConfig(**kwargs)


class TestBudgetAllocator:
    def _allocator(self, **kwargs):
        return BudgetAllocator(
            BudgetConfig(**kwargs), max_power_w=100.0, rng=np.random.default_rng(3)
        )

    def test_starts_wide_open(self):
        allocator = self._allocator()
        assert allocator.level == pytest.approx(1.0)
        assert allocator.tilt == pytest.approx(0.0)
        assert not allocator.primed

    def test_decide_updates_indices_and_primes(self):
        allocator = self._allocator()
        state = np.linspace(0.0, 1.0, BudgetAllocator.STATE_DIM)
        level, tilt = allocator.decide(state)
        assert allocator.primed
        assert level in allocator.level_ladder
        assert tilt in allocator.tilt_ladder
        # Second decision closes the first transition with a reward.
        allocator.decide(state, reward=0.5)
        assert allocator.agent.step_count == 1

    def test_decide_rejects_wrong_state_dim(self):
        with pytest.raises(ShapeError):
            self._allocator().decide(np.zeros(3))

    def test_budgets_tilt_toward_high_slack_nodes(self):
        allocator = self._allocator(levels=5, tilts=3, tilt_strength=0.5)
        allocator._level_idx = 2          # mid ladder
        allocator._tilt_idx = 2           # max tilt
        budgets = allocator.budgets(np.array([1.0, 0.0, 0.0, 0.0]))
        assert budgets[0] > budgets[1]
        np.testing.assert_allclose(budgets[1:], budgets[1])

    def test_budgets_clipped_to_floor_and_cap(self):
        allocator = self._allocator(floor_fraction=0.3, tilt_strength=5.0)
        allocator._level_idx = 0
        allocator._tilt_idx = allocator.config.tilts - 1
        budgets = allocator.budgets(np.array([10.0, -10.0]))
        assert (budgets >= 0.3 * 100.0 - 1e-9).all()
        assert (budgets <= 100.0 + 1e-9).all()

    def test_non_finite_slack_handled(self):
        allocator = self._allocator()
        budgets = allocator.budgets(np.array([np.nan, 0.5, np.inf]))
        assert np.isfinite(budgets).all()

    def test_state_roundtrip(self):
        a = self._allocator()
        state = np.linspace(0.0, 1.0, BudgetAllocator.STATE_DIM)
        a.decide(state)
        a.decide(state * 0.5, reward=0.2)
        b = self._allocator()
        b.load_state_dict(a.state_dict())
        assert b._level_idx == a._level_idx and b._tilt_idx == a._tilt_idx
        assert b.primed
        np.testing.assert_array_equal(b._prev_state, a._prev_state)
        assert b.agent.step_count == a.agent.step_count

    def test_malformed_state_rejected(self):
        allocator = self._allocator()
        with pytest.raises(CheckpointError):
            allocator.load_state_dict({"level_idx": 0})


class TestBudgetMasking:
    def test_tight_budget_repairs_allocations(self):
        manager, venv = _build_hier(2)
        results = venv.step(manager.initial_assignments())
        manager.budgets[:] = 0.35 * manager.max_power_w
        allocations = manager._initial_allocations()   # all cores, max DVFS
        repaired = manager._constrain_allocations(0, allocations, results[0])
        assert repaired is not allocations
        rates = {
            n: results[0].observations[n].interval.arrival_rate
            for n in manager.service_order
        }
        power = sum(
            manager._allocation_power(n, repaired[n], rates[n])
            for n in manager.service_order
        )
        budget = float(manager.budgets[0])
        shrinkable = any(
            repaired[n].freq_index > 0 or repaired[n].num_cores > 1
            for n in manager.service_order
        )
        assert power <= budget or not shrinkable

    def test_loose_budget_returns_same_object(self):
        manager, venv = _build_hier(2)
        results = venv.step(manager.initial_assignments())
        manager.budgets[:] = len(SERVICES) * manager.max_power_w
        allocations = manager._initial_allocations()
        assert manager._constrain_allocations(0, allocations, results[0]) is allocations

    def test_overshoot_penalty_lowers_rewards(self):
        manager, venv = _build_hier(2)
        results = venv.step(manager.initial_assignments())
        breakdowns = manager._compute_rewards(0, results[0])
        manager.budgets[:] = 1e6                          # no overshoot
        unshaped = manager._shape_rewards(0, breakdowns)
        assert unshaped is breakdowns
        estimated = sum(manager._last_estimated_power[0].values())
        manager.budgets[:] = estimated / 2.0              # 2x overshoot
        shaped = manager._shape_rewards(0, breakdowns)
        for name in manager.service_order:
            assert shaped[name].total < breakdowns[name].total


class TestBudgetEvents:
    def test_budget_assign_emitted_every_period(self):
        manager, venv = _build_hier(2, period=3)
        sink = MemorySink(validate=True)
        run_fleet(manager, venv, 7, obs=ObsContext(sink=sink))
        events = sink.of_type("budget_assign")
        assert [e["t"] for e in events] == [3, 6]
        first, second = events
        assert first["reward"] == 0.0                 # nothing to learn from yet
        assert first["period"] == 3
        for event in events:
            assert 0.0 < event["min_budget_w"] <= event["mean_budget_w"]
            assert event["mean_budget_w"] <= event["max_budget_w"]
            assert event["max_budget_w"] <= manager.max_power_w + 1e-9
        # The window reward is real from the second assignment on.
        assert second["reward"] != 0.0 or second["level"] >= 0.0

    def test_budgets_respect_ladder_floor(self):
        manager, venv = _build_hier(2, period=2, floor_fraction=0.4)
        run_fleet(manager, venv, 6)
        floor = 0.4 * manager.max_power_w
        assert (manager.budgets >= floor - 1e-9).all()
        assert (manager.budgets <= manager.max_power_w + 1e-9).all()


class TestHierResume:
    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        steps = 16
        plain_manager, plain_venv = _build_hier(2, period=3)
        plain = run_fleet(plain_manager, plain_venv, steps)

        first_manager, first_venv = _build_hier(2, period=3)
        run_fleet(
            first_manager, first_venv, steps,
            checkpoint_every=8, checkpoint_dir=tmp_path,
        )
        resumed_manager, resumed_venv = _build_hier(2, period=3)
        resumed = run_fleet(resumed_manager, resumed_venv, steps,
                            resume_from=tmp_path)
        for a, b in zip(plain, resumed):
            assert a.power_w == b.power_w
            for name in SERVICES:
                assert a.services[name].p99_ms == b.services[name].p99_ms
                assert a.services[name].arrival_rps == b.services[name].arrival_rps
        np.testing.assert_array_equal(
            resumed_manager.budgets, plain_manager.budgets
        )
        assert resumed_manager._tick == plain_manager._tick
        assert (
            resumed_manager.allocator.agent.step_count
            == plain_manager.allocator.agent.step_count
        )

    def test_flat_checkpoint_rejected_by_hier_run(self, tmp_path):
        # Distinct manager names keep flat and hierarchical checkpoints
        # from cross-resuming.
        flat = FleetTwig(
            [get_profile(s) for s in SERVICES],
            _twig_config(),
            np.random.default_rng(8),
            num_envs=2,
        )
        flat.index_tag = "node"
        venv = ClusterEnvironment.from_services(SERVICES, 2, seed=7,
                                                balancer="least_loaded")
        run_fleet(flat, venv, 10, checkpoint_every=5, checkpoint_dir=tmp_path)
        manager, hier_venv = _build_hier(2)
        with pytest.raises(CheckpointError):
            run_fleet(manager, hier_venv, 10, resume_from=tmp_path)

    def test_state_without_hier_subtree_rejected(self):
        flat = FleetTwig(
            [get_profile(s) for s in SERVICES],
            _twig_config(),
            np.random.default_rng(8),
            num_envs=2,
        )
        manager, _ = _build_hier(2)
        with pytest.raises(CheckpointError):
            manager.load_state_dict(flat.state_dict())


class TestTransfer:
    """BDQAgent.transfer composed with the fused head bank (satellite 4)."""

    def _snapshot(self, network):
        trunk = [p.value.copy() for p in network.trunk.parameters()]
        heads = list(network.value_heads)
        for agent_heads in network.adv_heads:
            heads.extend(agent_heads)
        outs = [h.layers[-1].weight.value.copy() for h in heads]
        hidden = [
            layer.weight.value.copy()
            for h in heads
            for layer in h.layers[:-1]
            if hasattr(layer, "weight")
        ]
        return trunk, outs, hidden

    def test_transfer_keeps_trunk_rerandomizes_heads(self):
        manager, venv = _build_hier(2)
        run_fleet(manager, venv, 6)               # move weights off init
        agent = manager.agent
        trunk_before, outs_before, hidden_before = self._snapshot(agent.online)
        step_before = agent.step_count
        assert step_before > 0

        agent.transfer(np.random.default_rng(99), restart_epsilon_at=0)

        trunk_after, outs_after, hidden_after = self._snapshot(agent.online)
        for a, b in zip(trunk_before, trunk_after):
            np.testing.assert_array_equal(a, b)   # shared trunk untouched
        for a, b in zip(hidden_before, hidden_after):
            np.testing.assert_array_equal(a, b)   # head hidden layers too
        assert any(
            not np.array_equal(a, b) for a, b in zip(outs_before, outs_after)
        )                                          # output layers replaced
        # Target resynced from online after the re-randomisation.
        for p, q in zip(agent.online.parameters(), agent.target.parameters()):
            np.testing.assert_array_equal(p.value, q.value)
        # Schedules rewound: exploration restarts from scratch.
        assert agent.step_count == 0
        assert agent.epsilon() == pytest.approx(agent.epsilon_schedule(0))
        assert agent.beta_schedule(agent.step_count) == pytest.approx(
            agent.config.per_beta_start
        )


class TestProvisioning:
    def test_provision_from_fleet_checkpoint(self, tmp_path):
        source_manager, source_venv = _build_hier(2, seed=11)
        run_fleet(source_manager, source_venv, 6)
        path = tmp_path / "source.ckpt.npz"
        source_manager.save(path)

        manager, _ = _build_hier(2, seed=23)
        sink = MemorySink(validate=True)
        manager.attach_obs(sink, None)
        provision_fleet(manager, path, rng=np.random.default_rng(5), time=0)

        # Trunk carried over from the source policy.
        source_trunk = [p.value for p in source_manager.agent.online.trunk.parameters()]
        new_trunk = [p.value for p in manager.agent.online.trunk.parameters()]
        for a, b in zip(source_trunk, new_trunk):
            np.testing.assert_array_equal(a, b)
        assert manager.agent.step_count == 0
        assert manager._provision_log == [
            {"source": str(path), "restart_epsilon_at": 0}
        ]
        events = sink.of_type("node_provisioned")
        assert sorted(e["node"] for e in events) == [0, 1]
        assert all(e["source"] == str(path) for e in events)
        assert all(e["services"] == SERVICES for e in events)
        # The provisioning log rides in the checkpoint.
        clone, _ = _build_hier(2, seed=31)
        clone.load_state_dict(manager.state_dict())
        assert clone._provision_log == manager._provision_log

    def test_provision_from_vector_run_checkpoint(self, tmp_path):
        source_manager, source_venv = _build_hier(2, seed=11)
        run_fleet(source_manager, source_venv, 8,
                  checkpoint_every=4, checkpoint_dir=tmp_path)
        ckpt = tmp_path / "run.ckpt.npz"
        assert ckpt.exists()
        manager, _ = _build_hier(2, seed=23)
        provision_fleet(manager, ckpt)
        source_trunk = [p.value for p in source_manager.agent.online.trunk.parameters()]
        new_trunk = [p.value for p in manager.agent.online.trunk.parameters()]
        for a, b in zip(source_trunk, new_trunk):
            np.testing.assert_array_equal(a, b)

    def test_missing_checkpoint_rejected(self, tmp_path):
        manager, _ = _build_hier(2)
        with pytest.raises(CheckpointError):
            provision_fleet(manager, tmp_path / "nope.ckpt.npz")

    def test_architecture_mismatch_rejected(self, tmp_path):
        small = HierFleetTwig(
            [get_profile("masstree")],
            _twig_config(),
            np.random.default_rng(3),
            num_envs=2,
        )
        path = tmp_path / "small.ckpt.npz"
        small.save(path)
        manager, _ = _build_hier(2)      # two services: different net shape
        with pytest.raises(CheckpointError):
            provision_fleet(manager, path)


class TestDegradedShedding:
    """service_crash on one node of an 8-node cluster sheds its traffic."""

    def test_crashed_node_is_drained_then_recovers(self):
        venv = ClusterEnvironment.from_services(
            SERVICES, num_nodes=8, seed=7, regions=("r0",),
            balancer="least_loaded",
        )
        venv.envs[3].faults = FaultInjector(
            [Fault("service_crash", "masstree", start=2, duration=3)]
        )
        manager = FleetTwig(
            [get_profile(s) for s in SERVICES],
            _twig_config(),
            np.random.default_rng(8),
            num_envs=8,
        )
        manager.index_tag = "node"
        assignments = manager.initial_assignments()
        node3_rates = {}
        for _ in range(7):
            results = venv.step(assignments)
            t = results[0].time
            node3_rates[t] = sum(
                results[3].observations[n].interval.arrival_rate for n in SERVICES
            )
        # Fault active t=2..4: NaN telemetry marks node 3 degraded, so the
        # balancer drains it from t=3 until one tick after recovery.
        assert venv._last_loads is not None
        assert node3_rates[1] > 0.0
        assert node3_rates[3] == pytest.approx(0.0)
        assert node3_rates[4] == pytest.approx(0.0)
        # Telemetry is finite again at t=5; traffic returns at t=6.
        assert node3_rates[6] > 0.0

    def test_degraded_mask_rides_in_checkpoint(self):
        venv = ClusterEnvironment.from_services(
            SERVICES, num_nodes=4, seed=7, regions=("r0",),
            balancer="least_loaded",
        )
        venv.envs[1].faults = FaultInjector(
            [Fault("service_crash", "masstree", start=1, duration=5)]
        )
        manager = FleetTwig(
            [get_profile(s) for s in SERVICES],
            _twig_config(),
            np.random.default_rng(8),
            num_envs=4,
        )
        assignments = manager.initial_assignments()
        venv.step(assignments)
        mask = venv._last_loads.degraded_mask()
        assert mask is not None and mask[1] and not mask[0]
        clone = ClusterEnvironment.from_services(
            SERVICES, num_nodes=4, seed=9, regions=("r0",),
            balancer="least_loaded",
        )
        clone.envs[1].faults = FaultInjector(
            [Fault("service_crash", "masstree", start=1, duration=5)]
        )
        clone.load_state_dict(venv.state_dict())
        np.testing.assert_array_equal(clone._last_loads.degraded_mask(), mask)


class TestRuleFleets:
    def test_static_fleet_runs_lock_step(self):
        fleet = make_rule_fleet("static", SERVICES, num_envs=3, seed=7)
        venv = ClusterEnvironment.from_services(SERVICES, 3, seed=7)
        traces = run_fleet(fleet, venv, 4)
        assert len(traces) == 3
        for trace in traces:
            for name in SERVICES:
                assert len(trace.services[name].p99_ms) == 4

    def test_parties_fleet_has_distinct_rngs(self):
        fleet = make_rule_fleet("parties", SERVICES, num_envs=2, seed=7)
        a, b = fleet.managers
        assert a._rng.bit_generator.state != b._rng.bit_generator.state

    def test_heracles_multi_service_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rule_fleet("heracles", SERVICES, num_envs=2, seed=7)

    def test_heracles_single_service_allowed(self):
        fleet = make_rule_fleet("heracles", ["masstree"], num_envs=2, seed=7)
        assert fleet.num_envs == 2

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rule_fleet("oracle", SERVICES, num_envs=2, seed=7)

    def test_state_identity_checked(self):
        fleet = make_rule_fleet("static", SERVICES, num_envs=2, seed=7)
        other = make_rule_fleet("parties", SERVICES, num_envs=2, seed=7)
        with pytest.raises(CheckpointError):
            other.load_state_dict(fleet.state_dict())


class TestHierExperiment:
    def test_registry_has_hier(self):
        from repro.experiments import REGISTRY

        assert "hier" in REGISTRY

    def test_scalar_engine_rejected(self):
        from repro.experiments.hier import HierConfig

        with pytest.raises(ConfigurationError):
            HierConfig(engine="scalar")

    def test_heracles_with_colocation_rejected(self):
        from repro.experiments.hier import HierConfig

        with pytest.raises(ConfigurationError):
            HierConfig(baselines=("flat", "heracles"))

    def test_tiny_run_compares_hier_and_flat(self):
        from repro.experiments.hier import HierConfig, run

        result = run(HierConfig(
            services=("masstree", "xapian"),
            num_nodes=3,
            steps=12,
            budget_period=4,
            baselines=("flat",),
            regions=("r0",),
            epsilon_mid_steps=5,
            epsilon_final_steps=10,
            window=6,
        ))
        assert sorted(result.variants) == ["flat", "hier"]
        for summary in result.variants.values():
            assert summary.total_energy_j > 0.0
            assert 0.0 <= summary.mean_fleet_qos <= 100.0
        assert isinstance(result.hier_beats_flat_energy, bool)
        assert "Hierarchical control" in result.format_table()
