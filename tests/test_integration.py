"""End-to-end integration tests across the full stack.

These exercise the complete pipeline — environment, telemetry, monitor,
agent, mapper, metrics — the way the experiments do, at small step
budgets. They complement the per-module unit tests by catching interface
drift between subsystems.
"""

import numpy as np
import pytest

from repro.baselines import HipsterManager, PartiesManager, StaticManager
from repro.core import Twig, TwigConfig
from repro.core.power_model import ServicePowerModel
from repro.experiments.common import make_environment
from repro.experiments.profiling import fit_service_power_model
from repro.experiments.runner import run_manager
from repro.server.spec import ServerSpec
from repro.services.loadgen import ConstantLoad, StepwiseVaryingLoad
from repro.services.profiles import get_profile
from repro.sim.environment import ColocationEnvironment, EnvironmentConfig


def test_full_loop_twig_s_with_fitted_power_model(rng):
    """Twig wired with an Equation-2 model fitted from profiling data."""
    spec = ServerSpec()
    profile = get_profile("masstree")
    model = fit_service_power_model(
        profile, spec, rng,
        loads=(0.3, 0.6), core_counts=(6, 12, 18), dvfs_indices=(0, 4, 8),
        seconds_per_point=2, n_candidates=400,
    )
    twig = Twig(
        [profile],
        TwigConfig.fast(epsilon_mid_steps=150, epsilon_final_steps=300),
        np.random.default_rng(42),
        spec=spec,
        power_models={"masstree": model},
    )
    env = make_environment(["masstree"], [0.4], 7, spec)
    trace = run_manager(twig, env, 400)
    assert trace.steps() == 400
    assert np.isfinite(trace.energy_j())
    assert twig.last_rewards["masstree"] != 0.0


def test_all_managers_coexist_on_same_environment_seed():
    """Every manager runs against identically seeded environments and
    produces comparable, finite summaries."""
    spec = ServerSpec()
    profile = get_profile("xapian")
    results = {}
    for name, manager in (
        ("static", StaticManager(["xapian"], spec=spec)),
        ("hipster", HipsterManager(profile, np.random.default_rng(3), spec=spec,
                                   learning_phase_steps=100)),
        ("twig", Twig([profile], TwigConfig.fast(epsilon_mid_steps=100,
                                                 epsilon_final_steps=200),
                      np.random.default_rng(42), spec=spec)),
    ):
        env = make_environment(["xapian"], [0.3], 11, spec)
        trace = run_manager(manager, env, 250)
        results[name] = trace.mean_power_w(100)
    assert all(20.0 < p < 130.0 for p in results.values())


def test_twig_c_three_services(rng):
    """Twig-C generalises beyond pairs: three colocated services."""
    spec = ServerSpec()
    names = ["masstree", "xapian", "img-dnn"]
    profiles = [get_profile(n) for n in names]
    twig = Twig(
        profiles,
        TwigConfig.fast(epsilon_mid_steps=100, epsilon_final_steps=200),
        np.random.default_rng(42),
        spec=spec,
    )
    assert twig.agent.config.state_dim == 33
    assert len(twig.agent.online.branch_sizes) == 3
    env = make_environment(names, [0.2, 0.2, 0.2], 7, spec)
    trace = run_manager(twig, env, 150)
    for name in names:
        assert len(trace.services[name].p99_ms) == 150


def test_service_swap_mid_run(rng):
    """Environment swap + Twig transfer keeps the loop consistent."""
    spec = ServerSpec()
    masstree, moses, xapian = (get_profile(n) for n in ("masstree", "moses", "xapian"))
    twig = Twig(
        [masstree, moses],
        TwigConfig.fast(epsilon_mid_steps=100, epsilon_final_steps=200),
        np.random.default_rng(42),
        spec=spec,
    )
    env = make_environment(["masstree", "moses"], [0.2, 0.3], 7, spec)
    run_manager(twig, env, 80)
    env.swap_service(
        "moses", xapian, ConstantLoad(xapian.max_load_rps, 0.3, rng=np.random.default_rng(9))
    )
    twig.transfer_to("moses", xapian)
    trace = run_manager(twig, env, 80)
    assert "xapian" in trace.services
    assert len(trace.services["xapian"].p99_ms) == 80


def test_load_spike_recovery():
    """Failure injection: a 4x load spike must not wedge the pipeline —
    the service violates during the spike and recovers afterwards."""
    spec = ServerSpec()
    profile = get_profile("masstree")
    spike = [0.3] * 60 + [1.2] * 20 + [0.3] * 120
    from repro.services.loadgen import TraceLoad

    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec),
        [profile],
        {"masstree": TraceLoad(profile.max_load_rps, spike, jitter_std=0.0)},
        np.random.default_rng(7),
    )
    manager = StaticManager(["masstree"], spec=spec)
    trace = run_manager(manager, env, len(spike))
    p99 = np.asarray(trace.services["masstree"].p99_ms)
    target = profile.qos_target_ms
    assert np.any(p99[60:80] > target)          # the spike hurts
    assert np.all(np.isfinite(p99))             # but nothing blows up
    assert np.mean(p99[-40:] <= target) > 0.9   # and it recovers


def test_varying_load_pipeline_with_parties():
    spec = ServerSpec()
    names = ["moses", "masstree"]
    profiles = [get_profile(n) for n in names]
    generators = {
        "moses": StepwiseVaryingLoad(2800, step_every=30, rng=np.random.default_rng(1)),
        "masstree": ConstantLoad(2400, 0.2, rng=np.random.default_rng(2)),
    }
    env = ColocationEnvironment(
        EnvironmentConfig(spec=spec), profiles, generators, np.random.default_rng(7)
    )
    manager = PartiesManager(profiles, np.random.default_rng(3), spec=spec)
    trace = run_manager(manager, env, 200)
    assert trace.steps() == 200
    assert sum(trace.migrations.values()) > 0


def test_determinism_same_seeds_same_trace():
    """The whole stack is reproducible from seeds."""
    def one_run():
        spec = ServerSpec()
        profile = get_profile("masstree")
        twig = Twig(
            [profile],
            TwigConfig.fast(epsilon_mid_steps=80, epsilon_final_steps=160),
            np.random.default_rng(42),
            spec=spec,
        )
        env = make_environment(["masstree"], [0.4], 7, spec)
        return run_manager(twig, env, 120)

    a, b = one_run(), one_run()
    assert a.services["masstree"].p99_ms == b.services["masstree"].p99_ms
    assert a.true_power_w == b.true_power_w


@pytest.mark.slow
def test_twig_robust_across_seeds():
    """Behavioural robustness: different seeds converge to similar QoS
    and all beat static on power at 30% load."""
    spec = ServerSpec()
    profile = get_profile("masstree")
    static_env = make_environment(["masstree"], [0.3], 1, spec)
    static_trace = run_manager(StaticManager(["masstree"], spec=spec), static_env, 200)
    base = static_trace.mean_power_w()
    for seed in (1, 2, 3):
        twig = Twig(
            [profile],
            TwigConfig.fast(epsilon_mid_steps=1500, epsilon_final_steps=2500),
            np.random.default_rng(seed),
            spec=spec,
        )
        env = make_environment(["masstree"], [0.3], seed + 50, spec)
        trace = run_manager(twig, env, 3500)
        assert trace.qos_guarantee("masstree", 300) > 85.0, seed
        assert trace.mean_power_w(300) < base, seed
