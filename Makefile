# Development targets. Everything assumes the src/ layout:
# PYTHONPATH=src is injected so no install step is needed.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-robust test-fleet test-hier test-ctrl trace-e2e bench bench-smoke docs-check profile-cluster

## Tier-1: the full unit/property/integration suite (excludes -m slow).
## Includes tests/test_repo_hygiene.py, which fails if bytecode, caches,
## or build artifacts are ever tracked by git again.
test:
	$(PYTEST) -x -q

## Robustness suite: checkpoint container round-trips, torn-write
## recovery, save->load->continue-training resume equivalence, fault
## injection + degraded-mode behaviour, and runner crash recovery.
test-robust:
	$(PYTEST) -q tests/test_ckpt_checkpoint.py tests/test_sim_faults.py \
		tests/test_resume_equivalence.py

## One tiny end-to-end traced experiment; validates every emitted JSONL
## trace line against the repro.obs event schema and the run manifest.
trace-e2e:
	$(PYTEST) -q -m trace_e2e

## Fleet layer: vector-engine scalar equivalence, cluster traffic /
## balancer invariants, cluster environment + experiment, and the
## docs/fleet.md schema diff.
test-fleet:
	$(PYTEST) -q tests/test_engine_vector.py tests/test_engine_fleet_array.py \
		tests/test_engine_sharded.py tests/test_cluster_traffic.py \
		tests/test_cluster_balancer.py tests/test_cluster_environment.py \
		tests/test_fleet_doc.py

## Hierarchical control: budget allocator + HierFleetTwig masking/reward
## shaping, provisioning transfer, degraded-node shedding, rule fleets,
## and hier checkpoint resume bit-identity.
test-hier:
	$(PYTEST) -q tests/test_hier.py tests/test_cluster_balancer.py \
		tests/test_cluster_traffic.py tests/test_fleet_doc.py

## Control plane: RPC framing/correlation/timeouts, lifecycle state
## machine + registry sweeps, node agent round-trips, the coordinator
## E2E churn/rollout suite, and the docs/control_plane.md schema diff.
test-ctrl:
	$(PYTEST) -q tests/test_ctrl_rpc.py tests/test_ctrl_lifecycle.py \
		tests/test_ctrl_registry.py tests/test_ctrl_node_agent.py \
		tests/test_ctrl_e2e.py tests/test_ctrl_doc.py

## Schema/doc consistency: docs/observability.md vs the event registry,
## docs/fleet.md vs the cluster layer, docs/control_plane.md vs
## repro.ctrl.
docs-check:
	$(PYTEST) -q tests/test_obs_schema_doc.py tests/test_fleet_doc.py \
		tests/test_ctrl_doc.py

## Paper-artifact benchmarks at quick scale.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## Harness perf smoke: serial vs --jobs batch running, looped vs batched
## PER sampling, and fused head-bank vs per-head-loop BDQ train_step/act
## at 1/2/4 agents; appends measured speedups to BENCH_perf_smoke.json.
bench-smoke:
	$(PYTEST) benchmarks/test_perf_smoke.py -q -s

## Profile the cluster hot path: cProfile over a 256-node fleet run,
## top 25 functions by cumulative time. Shows where a cluster tick goes
## (fused node step vs control plane vs agent train).
profile-cluster:
	PYTHONPATH=src $(PYTHON) -c "\
	import cProfile, pstats; \
	import numpy as np; \
	from repro.cluster.environment import ClusterEnvironment; \
	from repro.core.config import TwigConfig; \
	from repro.engine.fleet import FleetTwig; \
	from repro.engine.rollout import run_fleet; \
	from repro.services.profiles import get_profile; \
	services = ['masstree', 'xapian', 'moses', 'img-dnn']; \
	venv = ClusterEnvironment.from_services(services, num_nodes=256, seed=7, balancer='least_loaded'); \
	manager = FleetTwig([get_profile(s) for s in services], TwigConfig.fast(epsilon_mid_steps=20, epsilon_final_steps=40), np.random.default_rng(8), num_envs=256); \
	manager.index_tag = 'node'; \
	profiler = cProfile.Profile(); \
	profiler.enable(); \
	run_fleet(manager, venv, 30); \
	profiler.disable(); \
	pstats.Stats(profiler).sort_stats('cumulative').print_stats(25)"
