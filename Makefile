# Development targets. Everything assumes the src/ layout:
# PYTHONPATH=src is injected so no install step is needed.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test trace-e2e bench docs-check

## Tier-1: the full unit/property/integration suite (excludes -m slow).
test:
	$(PYTEST) -x -q

## One tiny end-to-end traced experiment; validates every emitted JSONL
## trace line against the repro.obs event schema and the run manifest.
trace-e2e:
	$(PYTEST) -q -m trace_e2e

## Schema/doc consistency: docs/observability.md vs the event registry.
docs-check:
	$(PYTEST) -q tests/test_obs_schema_doc.py

## Paper-artifact benchmarks at quick scale.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s
